// Unit tests for the common substrate: Status/Result, binary serde,
// hashing, RNG, queues, thread pool, token bucket, metrics.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "common/binary_io.h"
#include "common/blocking_queue.h"
#include "common/hash.h"
#include "common/metrics.h"
#include "common/query_scope.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "common/token_bucket.h"

namespace hybridjoin {
namespace {

// --------------------------- Status / Result ------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no such table");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "no such table");
  EXPECT_EQ(s.ToString(), "NotFound: no such table");
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status s = Status::IOError("disk gone");
  Status copy = s;
  EXPECT_EQ(copy, s);
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsIOError());
  EXPECT_EQ(moved.message(), "disk gone");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 9; ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Internal("boom"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(9));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 9);
}

Result<int> Half(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Status UseAssignOrReturn(int v, int* out) {
  HJ_ASSIGN_OR_RETURN(int half, Half(v));
  HJ_ASSIGN_OR_RETURN(int quarter, Half(half));
  *out = quarter;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(8, &out).ok());
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(UseAssignOrReturn(6, &out).IsInvalidArgument());
}

// ------------------------------ Binary IO ---------------------------------

TEST(BinaryIoTest, RoundTripPrimitives) {
  BinaryWriter w;
  w.PutU8(7);
  w.PutI32(-123456);
  w.PutI64(-99887766554433LL);
  w.PutF64(3.5);
  w.PutString("hello|world");
  const auto buf = w.Release();

  BinaryReader r(buf);
  EXPECT_EQ(r.GetU8().value(), 7);
  EXPECT_EQ(r.GetI32().value(), -123456);
  EXPECT_EQ(r.GetI64().value(), -99887766554433LL);
  EXPECT_EQ(r.GetF64().value(), 3.5);
  EXPECT_EQ(r.GetString().value(), "hello|world");
  EXPECT_TRUE(r.AtEnd());
}

TEST(BinaryIoTest, VarintBoundaries) {
  BinaryWriter w;
  const uint64_t values[] = {0,    1,       127,        128,
                             300,  16383,   16384,      (1ULL << 32),
                             ~0ULL};
  for (uint64_t v : values) w.PutVarint(v);
  BinaryReader r(w.buffer());
  for (uint64_t v : values) {
    EXPECT_EQ(r.GetVarint().value(), v);
  }
}

TEST(BinaryIoTest, SignedVarintZigzag) {
  BinaryWriter w;
  const int64_t values[] = {0, -1, 1, -64, 64, INT64_MIN, INT64_MAX};
  for (int64_t v : values) w.PutSignedVarint(v);
  BinaryReader r(w.buffer());
  for (int64_t v : values) {
    EXPECT_EQ(r.GetSignedVarint().value(), v);
  }
}

TEST(BinaryIoTest, TruncatedReadsAreErrors) {
  BinaryWriter w;
  w.PutU32(1);
  BinaryReader r(w.buffer());
  EXPECT_TRUE(r.GetU64().status().code() == StatusCode::kOutOfRange);
}

TEST(BinaryIoTest, TruncatedVarintIsError) {
  std::vector<uint8_t> bad = {0x80, 0x80};  // never terminates
  BinaryReader r(bad);
  EXPECT_FALSE(r.GetVarint().ok());
}

TEST(BinaryIoTest, TruncatedStringIsError) {
  BinaryWriter w;
  w.PutVarint(100);  // declared length 100, no bytes follow
  BinaryReader r(w.buffer());
  EXPECT_FALSE(r.GetString().ok());
}

// ------------------------------- Hashing ----------------------------------

TEST(HashTest, Mix64Avalanches) {
  // Flipping one input bit should flip roughly half the output bits.
  int total = 0;
  for (int bit = 0; bit < 64; ++bit) {
    total += __builtin_popcountll(Mix64(12345) ^ Mix64(12345 ^ (1ULL << bit)));
  }
  EXPECT_GT(total / 64, 20);
  EXPECT_LT(total / 64, 44);
}

TEST(HashTest, SeedsDecorrelate) {
  EXPECT_NE(HashInt64(42, 1), HashInt64(42, 2));
  EXPECT_NE(HashString("abc", 1), HashString("abc", 2));
}

TEST(HashTest, AgreedPartitionIsBalancedAndStable) {
  const uint32_t parts = 7;
  std::vector<int> counts(parts, 0);
  for (int64_t k = 0; k < 70000; ++k) {
    const uint32_t p = AgreedPartition(k, parts);
    ASSERT_LT(p, parts);
    EXPECT_EQ(p, AgreedPartition(k, parts));  // deterministic
    counts[p]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 700);
  }
}

// -------------------------------- Random ----------------------------------

TEST(RngTest, DeterministicPerSeed) {
  Rng a(9), b(9), c(10);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformWithinBounds) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(2);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

// ---------------------------- BlockingQueue -------------------------------

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_EQ(*q.Pop(), 3);
}

TEST(BlockingQueueTest, CloseDrainsThenEnds) {
  BlockingQueue<int> q;
  q.Push(5);
  q.Close();
  EXPECT_FALSE(q.Push(6));
  EXPECT_EQ(*q.Pop(), 5);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueueTest, BoundedBlocksProducerUntilConsumed) {
  BlockingQueue<int> q(2);
  q.Push(1);
  q.Push(2);
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    q.Push(3);
    third_pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_pushed.load());
  EXPECT_EQ(*q.Pop(), 1);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
}

TEST(BlockingQueueTest, PushWithDeadlineTimesOutOnFullQueue) {
  BlockingQueue<int> q(1);
  q.Push(1);
  bool timed_out = false;
  Stopwatch sw;
  EXPECT_FALSE(q.PushWithDeadline(2, std::chrono::milliseconds(30),
                                  &timed_out));
  EXPECT_TRUE(timed_out);
  EXPECT_GT(sw.ElapsedSeconds(), 0.02);
  // Space frees up: the next deadline push succeeds immediately.
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_TRUE(q.PushWithDeadline(3, std::chrono::milliseconds(30),
                                 &timed_out));
  EXPECT_FALSE(timed_out);
  EXPECT_EQ(*q.Pop(), 3);
}

TEST(BlockingQueueTest, PushWithDeadlineDistinguishesClosedFromTimeout) {
  BlockingQueue<int> q(1);
  q.Push(1);
  q.Close();
  bool timed_out = true;
  EXPECT_FALSE(q.PushWithDeadline(2, std::chrono::milliseconds(30),
                                  &timed_out));
  EXPECT_FALSE(timed_out);  // closed, not timed out
}

TEST(BlockingQueueTest, PushWithDeadlineNonPositiveTimeoutBlocksLikePush) {
  BlockingQueue<int> q(1);
  q.Push(1);
  std::atomic<bool> pushed{false};
  bool timed_out = true;
  std::thread producer([&] {
    EXPECT_TRUE(q.PushWithDeadline(2, std::chrono::milliseconds(0),
                                   &timed_out));
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(*q.Pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_FALSE(timed_out);
}

TEST(BlockingQueueTest, CloseWakesBlockedDeadlinePushers) {
  // The admission-path race: waiters blocked on a full queue while another
  // thread closes it. Every pusher must wake promptly with closed (not
  // timed out), and no pusher may deadlock.
  BlockingQueue<int> q(1);
  q.Push(1);
  constexpr int kPushers = 4;
  bool timed_out[kPushers] = {true, true, true, true};
  bool pushed[kPushers] = {true, true, true, true};
  std::vector<std::thread> pushers;
  for (int i = 0; i < kPushers; ++i) {
    pushers.emplace_back([&, i] {
      pushed[i] = q.PushWithDeadline(100 + i, std::chrono::milliseconds(60000),
                                     &timed_out[i]);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Stopwatch sw;
  q.Close();
  for (auto& t : pushers) t.join();
  EXPECT_LT(sw.ElapsedSeconds(), 10.0);  // woken by Close, not the deadline
  for (int i = 0; i < kPushers; ++i) {
    EXPECT_FALSE(pushed[i]) << i;
    EXPECT_FALSE(timed_out[i]) << i;
  }
}

TEST(BlockingQueueTest, ManyProducersManyConsumers) {
  BlockingQueue<int> q(8);
  constexpr int kPerProducer = 1000;
  constexpr int kProducers = 4;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.Push(p * kPerProducer + i);
    });
  }
  std::atomic<int64_t> sum{0};
  std::atomic<int> seen{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum += *v;
        seen++;
      }
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(seen.load(), kProducers * kPerProducer);
  const int64_t n = kProducers * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// ------------------------------ ThreadPool --------------------------------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count++; });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count++; });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { count++; });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndexes) {
  std::vector<int> hits(32, 0);
  ParallelFor(32, [&](size_t i) { hits[i] = static_cast<int>(i) + 1; });
  for (int i = 0; i < 32; ++i) EXPECT_EQ(hits[i], i + 1);
}

// ------------------------------ TokenBucket -------------------------------

TEST(TokenBucketTest, UnlimitedNeverBlocks) {
  TokenBucket tb(0);
  Stopwatch sw;
  tb.Acquire(1ULL << 30);
  EXPECT_LT(sw.ElapsedSeconds(), 0.05);
}

TEST(TokenBucketTest, RateLimitsThroughput) {
  // 10 MB/s, ask for ~2 MB beyond the burst: should take ~0.2 s.
  TokenBucket tb(10 * 1024 * 1024, /*burst_bytes=*/64 * 1024);
  tb.Acquire(64 * 1024);  // drain the initial burst
  Stopwatch sw;
  tb.Acquire(2 * 1024 * 1024);
  const double elapsed = sw.ElapsedSeconds();
  EXPECT_GT(elapsed, 0.12);
  EXPECT_LT(elapsed, 0.8);
}

TEST(TokenBucketTest, ConcurrentAcquirersShareTheRate) {
  TokenBucket tb(20 * 1024 * 1024, 64 * 1024);
  tb.Acquire(64 * 1024);
  Stopwatch sw;
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&tb] { tb.Acquire(1024 * 1024); });
  }
  for (auto& t : threads) t.join();
  // 4 MB at 20 MB/s shared => ~0.2 s total regardless of thread count.
  EXPECT_GT(sw.ElapsedSeconds(), 0.1);
}

TEST(TokenBucketTest, TryAcquireForSucceedsWithinBudget) {
  TokenBucket tb(1024 * 1024, /*burst_bytes=*/64 * 1024);
  // The burst is available immediately, even with a zero timeout.
  EXPECT_TRUE(tb.TryAcquireFor(64 * 1024, std::chrono::milliseconds(0)));
  // ~64 KiB more at 1 MiB/s refills in ~62 ms: a generous deadline wins.
  EXPECT_TRUE(tb.TryAcquireFor(64 * 1024, std::chrono::milliseconds(2000)));
}

TEST(TokenBucketTest, TryAcquireForTimesOutWhenStarved) {
  TokenBucket tb(1024, /*burst_bytes=*/16);  // 1 KiB/s: glacial refill
  EXPECT_TRUE(tb.TryAcquireFor(16, std::chrono::milliseconds(0)));
  Stopwatch sw;
  // 1024 tokens need a full second; a 30 ms deadline must fail fast.
  EXPECT_FALSE(tb.TryAcquireFor(1024, std::chrono::milliseconds(30)));
  EXPECT_LT(sw.ElapsedSeconds(), 0.5);
}

TEST(TokenBucketTest, TryAcquireForUnlimitedAlwaysSucceeds) {
  TokenBucket tb(0);
  EXPECT_TRUE(tb.TryAcquireFor(1ULL << 40, std::chrono::milliseconds(0)));
}

// -------------------------------- Metrics ---------------------------------

TEST(MetricsTest, CountersAccumulate) {
  Metrics m;
  m.Add("x", 5);
  m.Add("x", 7);
  m.Add("y", 1);
  EXPECT_EQ(m.Get("x"), 12);
  EXPECT_EQ(m.Get("y"), 1);
  auto snap = m.Snapshot();
  EXPECT_EQ(snap.at("x"), 12);
  m.Reset();
  EXPECT_EQ(m.Get("x"), 0);
}

TEST(MetricsTest, HandleIsFastPath) {
  Metrics m;
  auto* counter = m.GetCounter("hot");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < 10000; ++i) {
        counter->fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(m.Get("hot"), 40000);
}

TEST(MetricsTest, MaxUnderConcurrentWritersKeepsTheMaximum) {
  Metrics m;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&m, t] {
      Metrics::NodeScope node(t);
      for (int i = 0; i < 5000; ++i) {
        // Interleave from every thread; the winner must be the global max
        // regardless of CAS races, and each node slice keeps its own max.
        m.Max("gauge", t * 10000 + i);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(m.Get("gauge"), 7 * 10000 + 4999);
  for (int t = 0; t < 8; ++t) {
    const auto snap = m.ScopedSnapshot(t);
    const auto& c = snap.counters.at({"", "gauge"});
    EXPECT_TRUE(c.gauge);
    EXPECT_EQ(c.value, t * 10000 + 4999);
  }
}

TEST(MetricsTest, HistogramSnapshotUnderConcurrentWriters) {
  Metrics m;
  std::vector<std::thread> threads;
  std::atomic<bool> stop{false};
  // Reader thread races Summarize against the recording threads; the final
  // snapshot below must still see every observation.
  threads.emplace_back([&m, &stop] {
    while (!stop.load()) {
      (void)m.HistogramSnapshot();
    }
  });
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&m] {
      for (int i = 1; i <= 2500; ++i) m.Record("lat", i);
    });
  }
  for (size_t t = 1; t < threads.size(); ++t) threads[t].join();
  stop.store(true);
  threads[0].join();
  const auto snap = m.HistogramSnapshot();
  ASSERT_EQ(snap.count("lat"), 1u);
  EXPECT_EQ(snap.at("lat").count, 4 * 2500);
  EXPECT_DOUBLE_EQ(snap.at("lat").min_seconds, 1e-6);
}

TEST(MetricsTest, ScopedAttributionFollowsNodeAndPhaseScopes) {
  Metrics m;
  m.Add("unattributed", 5);  // no scope: global only
  {
    Metrics::NodeScope node(3);
    m.Add("x", 10);
    {
      Metrics::PhaseScope phase("scan");
      m.Add("x", 7);
      Metrics::NodeScope inner(4);  // nested node scope wins
      m.Add("x", 1);
    }
    m.Add("x", 2);  // phase scope popped
    m.Record("lat", 100);
  }
  EXPECT_EQ(m.Get("x"), 20);
  EXPECT_EQ(m.Get("unattributed"), 5);
  EXPECT_EQ(Metrics::CurrentNodeKey(), Metrics::kNoNode);
  EXPECT_STREQ(Metrics::CurrentPhase(), "");

  const auto node3 = m.ScopedSnapshot(3);
  EXPECT_EQ(node3.counters.at({"", "x"}).value, 12);
  EXPECT_EQ(node3.counters.at({"scan", "x"}).value, 7);
  EXPECT_EQ(node3.counters.count({"", "unattributed"}), 0u);
  EXPECT_EQ(node3.histograms.at({"", "lat"}).count, 1);
  const auto node4 = m.ScopedSnapshot(4);
  EXPECT_EQ(node4.counters.at({"scan", "x"}).value, 1);

  m.ClearScoped();
  EXPECT_TRUE(m.ScopedSnapshot(3).empty());
  EXPECT_EQ(m.Get("x"), 20);  // globals survive ClearScoped
}

TEST(MetricsTest, ScopedSlicesAreIsolatedPerQuery) {
  // Two concurrent queries writing to the same node key must land in
  // separate slices, and clearing one query's slices must not touch the
  // other's — the invariant behind concurrent EXPLAIN ANALYZE.
  Metrics m;
  {
    QueryScope q1(101);
    Metrics::NodeScope node(3);
    m.Add("x", 10);
  }
  {
    QueryScope q2(202);
    Metrics::NodeScope node(3);
    m.Add("x", 7);
  }
  Metrics::NodeScope node(3);
  m.Add("x", 1);  // query id 0: the legacy "no query" slice

  EXPECT_EQ(m.Get("x"), 18);  // globals are still query-blind
  EXPECT_EQ(m.ScopedSnapshot(101, 3).counters.at({"", "x"}).value, 10);
  EXPECT_EQ(m.ScopedSnapshot(202, 3).counters.at({"", "x"}).value, 7);
  EXPECT_EQ(m.ScopedSnapshot(0, 3).counters.at({"", "x"}).value, 1);
  // The legacy single-arg snapshot reads the calling thread's query slice.
  EXPECT_EQ(m.ScopedSnapshot(3).counters.at({"", "x"}).value, 1);
  {
    QueryScope q1(101);
    EXPECT_EQ(m.ScopedSnapshot(3).counters.at({"", "x"}).value, 10);
  }

  m.ClearScoped(101);
  EXPECT_TRUE(m.ScopedSnapshot(101, 3).empty());
  EXPECT_EQ(m.ScopedSnapshot(202, 3).counters.at({"", "x"}).value, 7);
  EXPECT_EQ(m.Get("x"), 18);
}

TEST(ThreadPoolTest, TasksInheritTheSubmittersQueryScope) {
  ThreadPool pool(4);
  std::atomic<int> wrong{0};
  {
    QueryScope q(7);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&wrong] {
        if (QueryScope::Current() != 7) wrong.fetch_add(1);
      });
    }
  }
  pool.Wait();
  EXPECT_EQ(wrong.load(), 0);
  // Outside any scope, submissions run under the legacy id 0.
  std::atomic<int> zero_ok{0};
  pool.Submit([&zero_ok] {
    if (QueryScope::Current() == 0) zero_ok.fetch_add(1);
  });
  pool.Wait();
  EXPECT_EQ(zero_ok.load(), 1);
}

TEST(ThreadPoolTest, LanesFromManyQueriesAllDrain) {
  ThreadPool pool(3);
  constexpr int kQueries = 5;
  constexpr int kTasksEach = 40;
  std::atomic<int> per_query[kQueries] = {};
  for (int q = 0; q < kQueries; ++q) {
    QueryScope scope(1000 + q);
    for (int i = 0; i < kTasksEach; ++i) {
      pool.Submit([&per_query, q] { per_query[q].fetch_add(1); });
    }
  }
  pool.Wait();
  for (int q = 0; q < kQueries; ++q) {
    EXPECT_EQ(per_query[q].load(), kTasksEach) << "query " << q;
  }
}

}  // namespace
}  // namespace hybridjoin
