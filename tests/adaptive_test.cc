// Tests for the adaptive join-location layer (hybrid/adaptive_join.cc):
// the DecidePivot stay-or-pivot rule, and end-to-end executions where the
// decision point corrects deliberately misleading statistics mid-query.
//
// The misleading statistics come from WorkloadConfig::cluster_t_by_pred:
// storing T sorted by its corPred column makes every stored batch pass the
// predicate almost entirely or not at all, so the estimator's single-batch
// sample is arbitrarily wrong while the decision point's exact qualifying
// row count (from the Bloom-build scan) is not. All shapes and seeds below
// are deterministic; the assertions hold run-over-run.

#include <gtest/gtest.h>

#include "hybrid/reference.h"
#include "hybrid/warehouse.h"
#include "testing/differential.h"
#include "workload/loader.h"

namespace hybridjoin {
namespace {

// ------------------------------ DecidePivot -------------------------------

SimulationConfig ThrottledConfig() {
  SimulationConfig c = SimulationConfig::PaperTestbed(2, 3, /*scale=*/1.0);
  c.bloom.expected_keys = 1024;
  return c;
}

/// Estimates that make zigzag the clear §5.5 winner under ThrottledConfig.
QueryEstimates ZigzagEstimates() {
  QueryEstimates est;
  est.db_filtered_bytes = 40 * 1024 * 1024;
  est.hdfs_filtered_bytes = 300 * 1024 * 1024;
  est.hdfs_scan_bytes = 800 * 1024 * 1024;
  est.db_joinkey_selectivity = 0.2;
  est.hdfs_joinkey_selectivity = 0.1;
  return est;
}

/// Estimates that make broadcast the clear winner (tiny T', heavy L').
QueryEstimates BroadcastEstimates() {
  QueryEstimates est;
  est.db_filtered_bytes = 10 * 1024;
  est.hdfs_filtered_bytes = 150 * 1024 * 1024;
  est.hdfs_scan_bytes = 200 * 1024 * 1024;
  return est;
}

TEST(DecidePivotTest, PivotsOnLargeObservedDisagreement) {
  EngineContext ctx(ThrottledConfig());
  const Advice initial = AdviseAlgorithm(ctx, ZigzagEstimates());
  ASSERT_EQ(initial.algorithm, JoinAlgorithm::kZigzag);
  const Advice verdict =
      DecidePivot(ctx, initial, BroadcastEstimates(), /*pivot_threshold=*/0.2);
  EXPECT_TRUE(verdict.has_observed);
  EXPECT_TRUE(verdict.pivoted) << verdict.ToString();
  EXPECT_EQ(verdict.final_algorithm, JoinAlgorithm::kBroadcast);
  EXPECT_EQ(verdict.algorithm, JoinAlgorithm::kZigzag);  // initial preserved
  EXPECT_FALSE(verdict.pivot_reason.empty());
  // Observed per-algorithm costs are filled in and rank broadcast best.
  EXPECT_LT(verdict.observed_broadcast_cost, verdict.observed_zigzag_cost);
  EXPECT_LT(verdict.observed_broadcast_cost, verdict.observed_db_side_cost);
}

TEST(DecidePivotTest, NeverPivotsWhenObservationConfirmsThePick) {
  EngineContext ctx(ThrottledConfig());
  const Advice initial = AdviseAlgorithm(ctx, ZigzagEstimates());
  // Observation agrees (same estimates): even a zero threshold stays.
  const Advice verdict =
      DecidePivot(ctx, initial, ZigzagEstimates(), /*pivot_threshold=*/0.0);
  EXPECT_TRUE(verdict.has_observed);
  EXPECT_FALSE(verdict.pivoted) << verdict.ToString();
  EXPECT_EQ(verdict.final_algorithm, initial.algorithm);
  EXPECT_TRUE(verdict.pivot_reason.empty());
}

TEST(DecidePivotTest, HysteresisSuppressesNearTies) {
  EngineContext ctx(ThrottledConfig());
  const Advice initial = AdviseAlgorithm(ctx, ZigzagEstimates());
  const QueryEstimates observed = BroadcastEstimates();
  // Find the observed stay/best cost ratio, then bracket it with thresholds:
  // hysteresis above the gap stays, hysteresis below it pivots.
  const Advice probe = DecidePivot(ctx, initial, observed, 0.0);
  ASSERT_TRUE(probe.pivoted);
  const double ratio =
      probe.observed_zigzag_cost / probe.observed_broadcast_cost;
  ASSERT_GT(ratio, 1.0);
  const Advice stayed = DecidePivot(ctx, initial, observed, ratio - 1.0 + 0.01);
  EXPECT_FALSE(stayed.pivoted) << stayed.ToString();
  EXPECT_EQ(stayed.final_algorithm, initial.algorithm);
  const Advice pivoted =
      DecidePivot(ctx, initial, observed, ratio - 1.0 - 0.01);
  EXPECT_TRUE(pivoted.pivoted) << pivoted.ToString();
}

TEST(DecidePivotTest, ToStringRendersEstimateVersusObservation) {
  EngineContext ctx(ThrottledConfig());
  const Advice initial = AdviseAlgorithm(ctx, ZigzagEstimates());
  EXPECT_NE(initial.ToString().find("est. costs"), std::string::npos);
  const Advice verdict = DecidePivot(ctx, initial, BroadcastEstimates(), 0.2);
  const std::string s = verdict.ToString();
  EXPECT_NE(s.find("zigzag -> broadcast"), std::string::npos) << s;
  EXPECT_NE(s.find("[pivoted]"), std::string::npos) << s;
  EXPECT_NE(s.find("est -> obs"), std::string::npos) << s;
  const Advice stayed = DecidePivot(ctx, initial, ZigzagEstimates(), 0.2);
  EXPECT_NE(stayed.ToString().find("[stayed]"), std::string::npos)
      << stayed.ToString();
}

// --------------------------- End-to-end pivots ----------------------------

/// The misleading-stats cell: T stored sorted by corPred so the estimator's
/// sampled batch sees zero qualifying rows (the advisor then picks
/// broadcast for the "tiny" T'), while the true T' is 20% of the table.
/// The throttled cross-switch makes broadcasting the real T' expensive, so
/// the observed cost model pivots to zigzag at the decision point.
class MisleadingStatsTest : public testing::Test {
 protected:
  void SetUp() override {
    WorkloadConfig wc;
    wc.num_join_keys = 2048;
    wc.t_rows = 64 * 1024;
    wc.l_rows = 192 * 1024;
    wc.batch_rows = 16 * 1024;
    wc.cluster_t_by_pred = true;
    auto workload = Workload::Generate(wc, {0.2, 0.1, 0.5, 0.5});
    ASSERT_TRUE(workload.ok()) << workload.status();
    workload_ = std::make_unique<Workload>(std::move(*workload));
    config_ = SimulationConfig();
    config_.db.num_workers = 2;
    config_.jen_workers = 3;
    config_.db.batch_rows = 4096;
    config_.bloom.expected_keys = wc.num_join_keys;
    config_.exec_threads = 1;
    config_.net.hdfs_nic_bps = 2 * 1024 * 1024;
    config_.net.cross_switch_bps = 512 * 1024;
  }

  std::unique_ptr<HybridWarehouse> MakeWarehouse() {
    auto hw = std::make_unique<HybridWarehouse>(config_);
    EXPECT_TRUE(LoadWorkload(hw.get(), *workload_).ok());
    return hw;
  }

  std::unique_ptr<Workload> workload_;
  SimulationConfig config_;
};

TEST_F(MisleadingStatsTest, PivotCorrectsTheMispickAndBeatsIt) {
  auto hw = MakeWarehouse();
  const HybridQuery query = workload_->MakeQuery();

  // The clustered layout fools the estimator: the sampled batch reports no
  // qualifying T rows and the advisor mispicks broadcast.
  auto est = EstimateQuery(&hw->context(), query);
  ASSERT_TRUE(est.ok()) << est.status();
  EXPECT_EQ(est->db_filtered_bytes, 0u);
  const Advice initial = AdviseAlgorithm(hw->context(), *est);
  ASSERT_EQ(initial.algorithm, JoinAlgorithm::kBroadcast)
      << initial.ToString();

  // Warm the HDFS page caches so the adaptive and static runs below read at
  // the same (warm) tier and the wall-clock comparison is apples-to-apples.
  ASSERT_TRUE(hw->Execute(query, JoinAlgorithm::kZigzag).ok());

  Advice advice;
  auto adaptive = hw->ExecuteAuto(query, &advice);
  ASSERT_TRUE(adaptive.ok()) << adaptive.status();
  EXPECT_TRUE(advice.has_observed);
  EXPECT_TRUE(advice.pivoted) << advice.ToString();
  EXPECT_EQ(advice.algorithm, JoinAlgorithm::kBroadcast);
  EXPECT_EQ(advice.final_algorithm, JoinAlgorithm::kZigzag)
      << advice.ToString();
  // The exact prefix count replaces the estimator's zero.
  EXPECT_FALSE(advice.pivot_reason.empty());

  // Byte-for-byte against the single-node oracle.
  auto ref = RunReferenceJoin({workload_->t_rows()}, workload_->l_batches(),
                              query);
  ASSERT_TRUE(ref.ok()) << ref.status();
  auto diff = testing_support::CompareBatches(*ref, adaptive->rows);
  EXPECT_FALSE(diff.has_value()) << *diff;

  // The pivot's verdict lands in the EXPLAIN ANALYZE profile.
  EXPECT_NE(adaptive->report.profile.ToText().find("advisor.pivoted"),
            std::string::npos);
  const obs::ProfileCounterRow* pivot_row =
      adaptive->report.profile.FindCounter("driver", "advisor.pivoted");
  ASSERT_NE(pivot_row, nullptr);
  EXPECT_EQ(pivot_row->total, 1);

  // Mid-query correction beats committing to the mispick: the static
  // broadcast pays the throttled cross-switch for the full (real) T'.
  auto mispick = hw->Execute(query, initial.algorithm);
  ASSERT_TRUE(mispick.ok()) << mispick.status();
  EXPECT_LT(adaptive->report.wall_seconds, mispick->report.wall_seconds)
      << advice.ToString();
}

TEST_F(MisleadingStatsTest, HysteresisSuppressesThePivot) {
  // Same misleading cell, but with a hysteresis threshold far above the
  // observed cost gap: the query must stay on the initial pick (and still
  // be correct) even though the observed costs disagree.
  config_.adaptive.pivot_threshold = 10.0;
  auto hw = MakeWarehouse();
  const HybridQuery query = workload_->MakeQuery();
  Advice advice;
  auto result = hw->ExecuteAuto(query, &advice);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(advice.has_observed);
  EXPECT_FALSE(advice.pivoted) << advice.ToString();
  EXPECT_EQ(advice.final_algorithm, JoinAlgorithm::kBroadcast);
  // The disagreement itself is still visible in the observed costs.
  EXPECT_GT(advice.observed_broadcast_cost,
            advice.observed_zigzag_cost * 1.2);
  auto ref = RunReferenceJoin({workload_->t_rows()}, workload_->l_batches(),
                              query);
  ASSERT_TRUE(ref.ok());
  auto diff = testing_support::CompareBatches(*ref, result->rows);
  EXPECT_FALSE(diff.has_value()) << *diff;
}

TEST_F(MisleadingStatsTest, DisabledAdaptivityKeepsTheStaticPath) {
  config_.adaptive.enabled = false;
  auto hw = MakeWarehouse();
  Advice advice;
  auto result = hw->ExecuteAuto(workload_->MakeQuery(), &advice);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(advice.has_observed);
  EXPECT_FALSE(advice.pivoted);
}

/// Accurate statistics (no clustering): the decision point must confirm the
/// initial pick and cost only a bounded slice of the query.
TEST(AdaptiveOverheadTest, AccurateStatsStayAndOverheadIsBounded) {
  WorkloadConfig wc;
  wc.num_join_keys = 2048;
  wc.t_rows = 64 * 1024;
  wc.l_rows = 192 * 1024;
  wc.batch_rows = 16 * 1024;
  auto workload = Workload::Generate(wc, {0.2, 0.1, 0.5, 0.5});
  ASSERT_TRUE(workload.ok());
  SimulationConfig config;
  config.db.num_workers = 2;
  config.jen_workers = 3;
  config.db.batch_rows = 4096;
  config.bloom.expected_keys = wc.num_join_keys;
  config.exec_threads = 1;
  HybridWarehouse hw(config);
  ASSERT_TRUE(LoadWorkload(&hw, *workload).ok());
  const HybridQuery query = workload->MakeQuery();
  ASSERT_TRUE(hw.Execute(query, JoinAlgorithm::kZigzag).ok());  // warm

  Advice advice;
  auto adaptive = hw.ExecuteAuto(query, &advice);
  ASSERT_TRUE(adaptive.ok()) << adaptive.status();
  EXPECT_TRUE(advice.has_observed);
  EXPECT_FALSE(advice.pivoted) << advice.ToString();
  auto fixed = hw.Execute(query, advice.final_algorithm);
  ASSERT_TRUE(fixed.ok());
  // Wall-clock bound is deliberately loose (2x) to stay robust on loaded CI
  // machines; the tight (<5%) overhead claim is the benchmark exhibit's
  // (bench/bench_ablation_adaptive.cc), measured over repetitions.
  EXPECT_LT(adaptive->report.wall_seconds,
            2.0 * fixed->report.wall_seconds + 0.25);
}

}  // namespace
}  // namespace hybridjoin
