// Unit + property tests for the LZ byte codec.

#include <gtest/gtest.h>

#include "common/binary_io.h"
#include "common/compress.h"
#include "common/random.h"

namespace hybridjoin {
namespace {

void RoundTrip(const std::vector<uint8_t>& input) {
  const auto compressed = LzCompress(input);
  auto decompressed = LzDecompress(compressed);
  ASSERT_TRUE(decompressed.ok()) << decompressed.status();
  EXPECT_EQ(*decompressed, input);
}

TEST(LzTest, EmptyInput) { RoundTrip({}); }

TEST(LzTest, TinyInputs) {
  for (size_t n = 1; n <= 8; ++n) {
    std::vector<uint8_t> v(n);
    for (size_t i = 0; i < n; ++i) v[i] = static_cast<uint8_t>(i * 37);
    RoundTrip(v);
  }
}

TEST(LzTest, HighlyRepetitiveCompressesWell) {
  std::vector<uint8_t> v(100000, 'a');
  const auto compressed = LzCompress(v);
  EXPECT_LT(compressed.size(), v.size() / 50);
  RoundTrip(v);
}

TEST(LzTest, RepeatedPhraseUsesMatches) {
  std::string phrase = "the quick brown fox jumps over the lazy dog. ";
  std::string text;
  for (int i = 0; i < 200; ++i) text += phrase;
  std::vector<uint8_t> v(text.begin(), text.end());
  const auto compressed = LzCompress(v);
  EXPECT_LT(compressed.size(), v.size() / 4);
  RoundTrip(v);
}

TEST(LzTest, IncompressibleRandomRoundTrips) {
  Rng rng(3);
  std::vector<uint8_t> v(50000);
  for (auto& b : v) b = static_cast<uint8_t>(rng.Next());
  RoundTrip(v);
}

TEST(LzTest, OverlappingCopyPattern) {
  // "abcabcabc..." exercises offset < match length replication.
  std::vector<uint8_t> v;
  for (int i = 0; i < 10000; ++i) v.push_back("abc"[i % 3]);
  RoundTrip(v);
}

TEST(LzTest, EndsExactlyOnMatch) {
  // Input whose tail is a match (regression for the trailing-token bug).
  std::vector<uint8_t> v;
  for (int i = 0; i < 64; ++i) v.push_back(static_cast<uint8_t>(i));
  for (int i = 0; i < 64; ++i) v.push_back(static_cast<uint8_t>(i));
  RoundTrip(v);
}

TEST(LzTest, MalformedInputsRejected) {
  // Truncated stream.
  std::vector<uint8_t> v(1000, 'x');
  auto compressed = LzCompress(v);
  compressed.resize(compressed.size() / 2);
  EXPECT_FALSE(LzDecompress(compressed).ok());

  // Garbage header claiming a huge size.
  std::vector<uint8_t> garbage = {0xff, 0xff, 0xff, 0x7f, 0x01, 0x41};
  EXPECT_FALSE(LzDecompress(garbage).ok());

  // Bad match offset (offset beyond what has been produced).
  BinaryWriter w;
  w.PutVarint(10);  // original size
  w.PutVarint(2);   // 2 literals
  w.PutRaw("ab", 2);
  w.PutVarint(4);   // match of 4
  w.PutVarint(99);  // offset 99 > produced 2
  EXPECT_FALSE(LzDecompress(w.buffer()).ok());
}

TEST(LzTest, PropertyRandomStructuredInputs) {
  Rng rng(77);
  for (int iter = 0; iter < 50; ++iter) {
    // A mix of runs, phrases and noise.
    std::vector<uint8_t> v;
    const int segments = 1 + static_cast<int>(rng.Uniform(20));
    for (int s = 0; s < segments; ++s) {
      const int kind = static_cast<int>(rng.Uniform(3));
      const size_t len = rng.Uniform(2000);
      if (kind == 0) {
        v.insert(v.end(), len, static_cast<uint8_t>(rng.Next()));
      } else if (kind == 1) {
        for (size_t i = 0; i < len; ++i) {
          v.push_back(static_cast<uint8_t>(rng.Next()));
        }
      } else if (!v.empty()) {
        // Copy a previous slice (creates real matches).
        const size_t start = rng.Uniform(v.size());
        const size_t n = std::min(len, v.size() - start);
        for (size_t i = 0; i < n; ++i) v.push_back(v[start + i]);
      }
    }
    RoundTrip(v);
  }
}

TEST(CodecTest, NoneCodecIsIdentity) {
  std::vector<uint8_t> v = {1, 2, 3};
  auto c = Compress(Codec::kNone, v.data(), v.size());
  EXPECT_EQ(c, v);
  auto d = Decompress(Codec::kNone, c.data(), c.size());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, v);
}

TEST(CodecTest, Names) {
  EXPECT_STREQ(CodecName(Codec::kNone), "none");
  EXPECT_STREQ(CodecName(Codec::kLz), "lz");
}

}  // namespace
}  // namespace hybridjoin
