// Tests for the algorithm advisor (§5.5 decision rules) and query
// preparation/validation.

#include <gtest/gtest.h>

#include "hybrid/warehouse.h"
#include "workload/loader.h"

namespace hybridjoin {
namespace {

SimulationConfig ThrottledConfig() {
  SimulationConfig c = SimulationConfig::PaperTestbed(2, 3, /*scale=*/1.0);
  c.bloom.expected_keys = 1024;
  return c;
}

TEST(AdvisorRulesTest, TinyDbSideFavorsBroadcast) {
  EngineContext ctx(ThrottledConfig());
  QueryEstimates est;
  est.db_filtered_bytes = 10 * 1024;           // tiny T' (paper sigma_T<=0.001)
  est.hdfs_filtered_bytes = 150 * 1024 * 1024; // large L' (shuffle-heavy)
  est.hdfs_scan_bytes = 200 * 1024 * 1024;
  const Advice advice = AdviseAlgorithm(ctx, est);
  EXPECT_EQ(advice.algorithm, JoinAlgorithm::kBroadcast)
      << advice.ToString();
}

TEST(AdvisorRulesTest, TinyHdfsSideFavorsDbSide) {
  EngineContext ctx(ThrottledConfig());
  QueryEstimates est;
  est.db_filtered_bytes = 50 * 1024 * 1024;
  est.hdfs_filtered_bytes = 20 * 1024;  // very selective sigma_L
  est.hdfs_scan_bytes = 200 * 1024 * 1024;
  const Advice advice = AdviseAlgorithm(ctx, est);
  EXPECT_EQ(advice.algorithm, JoinAlgorithm::kDbSideBloom)
      << advice.ToString();
}

TEST(AdvisorRulesTest, LargeBothSidesFavorsZigzag) {
  EngineContext ctx(ThrottledConfig());
  QueryEstimates est;
  est.db_filtered_bytes = 40 * 1024 * 1024;
  est.hdfs_filtered_bytes = 300 * 1024 * 1024;
  est.hdfs_scan_bytes = 800 * 1024 * 1024;
  est.db_joinkey_selectivity = 0.2;
  est.hdfs_joinkey_selectivity = 0.1;
  const Advice advice = AdviseAlgorithm(ctx, est);
  EXPECT_EQ(advice.algorithm, JoinAlgorithm::kZigzag) << advice.ToString();
  EXPECT_FALSE(advice.ToString().empty());
}

class AdvisorEstimateTest : public testing::Test {
 protected:
  void SetUp() override {
    WorkloadConfig wc;
    wc.num_join_keys = 1024;
    wc.t_rows = 30000;
    wc.l_rows = 80000;
    auto workload = Workload::Generate(wc, {0.2, 0.1, 0.5, 0.5});
    ASSERT_TRUE(workload.ok());
    workload_ = std::make_unique<Workload>(std::move(*workload));
    SimulationConfig config;
    config.db.num_workers = 2;
    config.jen_workers = 3;
    config.bloom.expected_keys = wc.num_join_keys;
    hw_ = std::make_unique<HybridWarehouse>(config);
    ASSERT_TRUE(LoadWorkload(hw_.get(), *workload_).ok());
  }
  std::unique_ptr<Workload> workload_;
  std::unique_ptr<HybridWarehouse> hw_;
};

TEST_F(AdvisorEstimateTest, SampledSelectivitiesAreClose) {
  auto est = EstimateQuery(&hw_->context(), workload_->MakeQuery());
  ASSERT_TRUE(est.ok()) << est.status();
  // sigma_T = 0.2 of 30000 rows, ~ 14 projected bytes/row.
  EXPECT_GT(est->db_filtered_bytes, 0u);
  EXPECT_GT(est->hdfs_filtered_bytes, 0u);
  EXPECT_GT(est->hdfs_scan_bytes, 0u);
  // The filtered HDFS estimate should be within 3x of truth: 8000 rows
  // x ~35 wire bytes.
  EXPECT_GT(est->hdfs_filtered_bytes, 80000u);
  EXPECT_LT(est->hdfs_filtered_bytes, 1200000u);
}

TEST_F(AdvisorEstimateTest, ExecuteAutoProducesCorrectResult) {
  Advice advice;
  auto result = hw_->ExecuteAuto(workload_->MakeQuery(), &advice);
  ASSERT_TRUE(result.ok()) << result.status();
  auto expected = hw_->Execute(workload_->MakeQuery(),
                               JoinAlgorithm::kZigzag);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(result->rows.num_rows(), expected->rows.num_rows());
  for (size_t r = 0; r < result->rows.num_rows(); ++r) {
    EXPECT_EQ(result->rows.column(1).i64()[r],
              expected->rows.column(1).i64()[r]);
  }
}

// ----------------------------- Query validation ---------------------------

class QueryValidationTest : public testing::Test {
 protected:
  HybridQuery Valid() {
    HybridQuery q;
    q.db.table = "T";
    q.db.alias = "T";
    q.db.projection = {"joinKey", "predAfterJoin"};
    q.db.join_key = "joinKey";
    q.hdfs.table = "L";
    q.hdfs.alias = "L";
    q.hdfs.projection = {"joinKey", "groupByExtractCol"};
    q.hdfs.join_key = "joinKey";
    q.agg = AggSpec::CountStar("L.groupByExtractCol", true);
    return q;
  }
};

TEST_F(QueryValidationTest, ValidPasses) {
  EXPECT_TRUE(Valid().Validate().ok());
}

TEST_F(QueryValidationTest, RejectsStructuralErrors) {
  {
    HybridQuery q = Valid();
    q.db.table = "";
    EXPECT_FALSE(q.Validate().ok());
  }
  {
    HybridQuery q = Valid();
    q.hdfs.alias = "T";  // duplicate alias
    EXPECT_FALSE(q.Validate().ok());
  }
  {
    HybridQuery q = Valid();
    q.db.projection = {"predAfterJoin"};  // join key not projected
    EXPECT_FALSE(q.Validate().ok());
  }
  {
    HybridQuery q = Valid();
    q.agg.items.clear();  // no aggregates
    EXPECT_FALSE(q.Validate().ok());
  }
  {
    HybridQuery q = Valid();
    q.agg.group_column = "L.notProjected";
    EXPECT_FALSE(q.Validate().ok());
  }
  {
    HybridQuery q = Valid();
    q.post_join_predicate = DiffRange("T.predAfterJoin", "L.missing", 0, 1);
    EXPECT_FALSE(q.Validate().ok());
  }
}

TEST_F(QueryValidationTest, PrepareCatchesCatalogErrors) {
  SimulationConfig config;
  config.db.num_workers = 2;
  config.jen_workers = 2;
  EngineContext ctx(config);
  HybridQuery q = Valid();
  // Neither table exists yet.
  EXPECT_FALSE(PrepareQuery(&ctx, q).ok());
}

}  // namespace
}  // namespace hybridjoin
