// Equivalence tests for the batched cache-conscious kernels: the batched
// Bloom Add/MayContain paths must be bit-identical to the scalar ones in
// both layouts, ProbeBatch must reproduce the scalar ForEachMatch output in
// exact order, and the wire format must round-trip the layout and reject
// inconsistent encodings.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "bloom/bloom_filter.h"
#include "common/random.h"
#include "exec/join_hash_table.h"
#include "jen/exchange.h"

namespace hybridjoin {
namespace {

std::vector<int64_t> RandomKeys(size_t n, uint64_t seed, uint64_t domain) {
  Rng rng(seed);
  std::vector<int64_t> keys(n);
  for (auto& k : keys) k = static_cast<int64_t>(rng.Uniform(domain));
  return keys;
}

// Key sets designed to stress the kernels: duplicates (multi-entry chains
// for one key), negatives (sign-extension of int32 keys), a dense run
// (adjacent cache lines), and an empty set.
std::vector<std::vector<int64_t>> AdversarialKeySets() {
  std::vector<std::vector<int64_t>> sets;
  sets.push_back({});                                    // empty batch
  sets.push_back({7, 7, 7, 7, 7, 7, 7, 7});              // all duplicates
  sets.push_back({-1, -2, 0, 1, 2, -2000000000});        // negatives
  std::vector<int64_t> dense(1000);
  for (size_t i = 0; i < dense.size(); ++i) dense[i] = static_cast<int64_t>(i);
  sets.push_back(std::move(dense));
  sets.push_back(RandomKeys(5000, 11, 300));             // heavy collisions
  sets.push_back(RandomKeys(5000, 12, 1u << 30));        // sparse
  return sets;
}

// ------------------------- Bloom batched == scalar -------------------------

class BloomLayoutTest : public ::testing::TestWithParam<BloomLayout> {};

TEST_P(BloomLayoutTest, AddKeysMatchesScalarAdd) {
  for (const auto& keys : AdversarialKeySets()) {
    const BloomParams params =
        BloomParams::ForKeys(4096, 8.0, 2, GetParam());
    BloomFilter scalar(params);
    BloomFilter batched(params);
    for (int64_t k : keys) scalar.Add(k);
    batched.AddKeys(std::span<const int64_t>(keys));
    EXPECT_EQ(scalar.Serialize(), batched.Serialize())
        << "layout=" << static_cast<int>(GetParam())
        << " keys=" << keys.size();
  }
}

TEST_P(BloomLayoutTest, AddKeysInt32MatchesScalarAdd) {
  // int32 keys must sign-extend to the same bits the scalar path sets.
  std::vector<int32_t> keys = {-1, 0, 1, -2000000000, 2000000000, 42, 42};
  const BloomParams params = BloomParams::ForKeys(256, 8.0, 2, GetParam());
  BloomFilter scalar(params);
  BloomFilter batched(params);
  for (int32_t k : keys) scalar.Add(k);
  batched.AddKeys(std::span<const int32_t>(keys));
  EXPECT_EQ(scalar.Serialize(), batched.Serialize());
}

TEST_P(BloomLayoutTest, AddKeysWithSelectionMatchesScalar) {
  const auto keys = RandomKeys(2000, 21, 1u << 20);
  std::vector<uint32_t> sel;
  for (uint32_t i = 0; i < keys.size(); i += 3) sel.push_back(i);
  const BloomParams params = BloomParams::ForKeys(1024, 8.0, 2, GetParam());
  BloomFilter scalar(params);
  BloomFilter batched(params);
  for (uint32_t r : sel) scalar.Add(keys[r]);
  batched.AddKeys(std::span<const int64_t>(keys),
                  std::span<const uint32_t>(sel));
  EXPECT_EQ(scalar.Serialize(), batched.Serialize());
}

TEST_P(BloomLayoutTest, MayContainKeysMatchesScalarFilter) {
  const BloomParams params = BloomParams::ForKeys(2048, 8.0, 2, GetParam());
  BloomFilter bloom(params);
  const auto inserted = RandomKeys(2000, 31, 1u << 16);
  bloom.AddKeys(std::span<const int64_t>(inserted));

  for (const auto& probe : AdversarialKeySets()) {
    std::vector<uint32_t> expected;
    for (uint32_t i = 0; i < probe.size(); ++i) {
      if (bloom.MayContain(probe[i])) expected.push_back(i);
    }
    std::vector<uint32_t> sel(probe.size());
    for (uint32_t i = 0; i < sel.size(); ++i) sel[i] = i;
    bloom.MayContainKeys(std::span<const int64_t>(probe), &sel);
    EXPECT_EQ(sel, expected);
  }
}

TEST_P(BloomLayoutTest, MayContainKeysInt32MatchesScalar) {
  const BloomParams params = BloomParams::ForKeys(512, 8.0, 2, GetParam());
  BloomFilter bloom(params);
  std::vector<int32_t> keys = {-5, -1, 0, 3, 1000000, -2000000000};
  bloom.AddKeys(std::span<const int32_t>(keys));

  std::vector<int32_t> probe = {-5, -4, -1, 0, 1, 3, 1000000, -2000000000, 9};
  std::vector<uint32_t> expected;
  for (uint32_t i = 0; i < probe.size(); ++i) {
    if (bloom.MayContain(probe[i])) expected.push_back(i);
  }
  std::vector<uint32_t> sel(probe.size());
  for (uint32_t i = 0; i < sel.size(); ++i) sel[i] = i;
  bloom.MayContainKeys(std::span<const int32_t>(probe), &sel);
  EXPECT_EQ(sel, expected);
}

TEST_P(BloomLayoutTest, NoFalseNegatives) {
  const auto keys = RandomKeys(10000, 41, 1ull << 40);
  BloomFilter bloom(BloomParams::ForKeys(keys.size(), 8.0, 2, GetParam()));
  bloom.AddKeys(std::span<const int64_t>(keys));
  std::vector<uint32_t> sel(keys.size());
  for (uint32_t i = 0; i < sel.size(); ++i) sel[i] = i;
  bloom.MayContainKeys(std::span<const int64_t>(keys), &sel);
  EXPECT_EQ(sel.size(), keys.size());  // every inserted key survives
}

TEST_P(BloomLayoutTest, SerializationRoundTripPreservesLayout) {
  BloomFilter bloom(BloomParams::ForKeys(1000, 8.0, 2, GetParam()));
  const auto keys = RandomKeys(1000, 51, 1u << 20);
  bloom.AddKeys(std::span<const int64_t>(keys));
  const auto bytes = bloom.Serialize();
  EXPECT_EQ(bytes.size(), bloom.ByteSize());
  auto restored = BloomFilter::Deserialize(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->layout(), GetParam());
  EXPECT_TRUE(restored->params() == bloom.params());
  EXPECT_EQ(restored->Serialize(), bytes);
}

INSTANTIATE_TEST_SUITE_P(BothLayouts, BloomLayoutTest,
                         ::testing::Values(BloomLayout::kClassic,
                                           BloomLayout::kBlocked),
                         [](const auto& info) {
                           return info.param == BloomLayout::kClassic
                                      ? "Classic"
                                      : "Blocked";
                         });

// --------------------------- layout wire rules ----------------------------

TEST(BloomLayoutWireTest, UnionRejectsLayoutMismatch) {
  // Same bit count, different placement scheme: OR-union would be silently
  // wrong, so it must be rejected.
  BloomFilter classic(BloomParams{1024, 2, BloomLayout::kClassic});
  BloomFilter blocked(BloomParams{1024, 2, BloomLayout::kBlocked});
  EXPECT_FALSE(classic.UnionWith(blocked).ok());
  EXPECT_FALSE(blocked.UnionWith(classic).ok());
  BloomFilter blocked2(BloomParams{1024, 2, BloomLayout::kBlocked});
  EXPECT_TRUE(blocked.UnionWith(blocked2).ok());
}

TEST(BloomLayoutWireTest, DeserializeRejectsUnknownLayoutByte) {
  BloomFilter bloom(BloomParams{512, 2, BloomLayout::kBlocked});
  auto bytes = bloom.Serialize();
  bytes[12] = 7;  // layout byte follows u64 num_bits + u32 num_hashes
  EXPECT_FALSE(BloomFilter::Deserialize(bytes).ok());
}

TEST(BloomLayoutWireTest, DeserializeRejectsUnalignedBlockedBits) {
  // A blocked filter whose bit count is not a whole number of 512-bit
  // blocks cannot have been produced by this code; reject it.
  BinaryWriter w;
  w.PutU64(576);  // 512 + 64: valid classic size, invalid blocked size
  w.PutU32(2);
  w.PutU8(static_cast<uint8_t>(BloomLayout::kBlocked));
  for (int i = 0; i < 9; ++i) w.PutU64(0);
  const auto bytes = w.Release();
  EXPECT_FALSE(BloomFilter::Deserialize(bytes).ok());

  BinaryWriter w2;
  w2.PutU64(576);
  w2.PutU32(2);
  w2.PutU8(static_cast<uint8_t>(BloomLayout::kClassic));
  for (int i = 0; i < 9; ++i) w2.PutU64(0);
  EXPECT_TRUE(BloomFilter::Deserialize(w2.Release()).ok());
}

TEST(BloomLayoutWireTest, BlockedFprHigherButBounded) {
  // For equal size the blocked layout concentrates bits, so its predicted
  // FPR is above classic — but within the same order of magnitude at the
  // paper's 8 bits/key operating point.
  const BloomParams classic = BloomParams::ForKeys(1 << 16);
  const BloomParams blocked =
      BloomParams::ForKeys(1 << 16, 8.0, 2, BloomLayout::kBlocked);
  const double fc = classic.ExpectedFpr(1 << 16);
  const double fb = blocked.ExpectedFpr(1 << 16);
  EXPECT_GT(fb, fc);
  EXPECT_LT(fb, 4.0 * fc);

  // And the prediction tracks reality: measure on disjoint probe keys.
  BloomFilter bloom(blocked);
  const auto keys = RandomKeys(1 << 16, 61, 1ull << 50);
  bloom.AddKeys(std::span<const int64_t>(keys));
  Rng rng(62);
  size_t fp = 0;
  const size_t trials = 200000;
  for (size_t i = 0; i < trials; ++i) {
    // Probe keys outside the insert domain.
    if (bloom.MayContain(static_cast<int64_t>((1ull << 50) + rng.Uniform(
                             1ull << 50)))) {
      ++fp;
    }
  }
  const double observed = static_cast<double>(fp) / trials;
  EXPECT_LT(observed, 2.0 * fb);
  EXPECT_GT(observed, 0.25 * fb);
  // The fill-fraction estimate is in the same ballpark too.
  EXPECT_LT(bloom.EstimatedFpr(), 4.0 * fb);
  EXPECT_GT(bloom.EstimatedFpr(), 0.25 * fb);
}

// ------------------------------ ProbeBatch --------------------------------

RecordBatch KeyBatch(const std::vector<int64_t>& keys) {
  auto schema = Schema::Make({{"k", DataType::kInt64}});
  RecordBatch b(schema);
  for (int64_t k : keys) b.AppendRow({Value(k)});
  return b;
}

TEST(ProbeBatchTest, MatchesForEachMatchInExactOrder) {
  // Build from several batches with heavy duplication (long chains), probe
  // with adversarial sets; the batched kernel must emit the identical match
  // list — same triples, same order — as the scalar loop.
  JoinHashTable table(0);
  ASSERT_TRUE(table.AddBatch(KeyBatch(RandomKeys(3000, 71, 200))).ok());
  ASSERT_TRUE(table.AddBatch(KeyBatch(RandomKeys(3000, 72, 200))).ok());
  ASSERT_TRUE(table.AddBatch(KeyBatch({-1, -1, -1, 0, 7})).ok());
  table.Finalize();

  for (const auto& probe : AdversarialKeySets()) {
    std::vector<JoinMatch> expected;
    for (uint32_t i = 0; i < probe.size(); ++i) {
      table.ForEachMatch(probe[i], [&](uint32_t b, uint32_t r) {
        expected.push_back({i, b, r});
      });
    }
    std::vector<JoinMatch> got;
    table.ProbeBatch(std::span<const int64_t>(probe), &got);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].probe_row, expected[i].probe_row) << "at " << i;
      EXPECT_EQ(got[i].batch, expected[i].batch) << "at " << i;
      EXPECT_EQ(got[i].row, expected[i].row) << "at " << i;
    }
  }
}

TEST(ProbeBatchTest, Int32KeysMatchScalar) {
  auto schema = Schema::Make({{"k", DataType::kInt32}});
  RecordBatch b(schema);
  for (int32_t k : {-3, -3, 0, 5, 5, 5, 2000000000}) b.AppendRow({Value(k)});
  JoinHashTable table(0);
  ASSERT_TRUE(table.AddBatch(std::move(b)).ok());
  table.Finalize();

  std::vector<int32_t> probe = {-3, 5, 9, 2000000000, -3, 0};
  std::vector<JoinMatch> expected;
  for (uint32_t i = 0; i < probe.size(); ++i) {
    table.ForEachMatch(probe[i], [&](uint32_t bi, uint32_t r) {
      expected.push_back({i, bi, r});
    });
  }
  std::vector<JoinMatch> got;
  table.ProbeBatch(std::span<const int32_t>(probe), &got);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].probe_row, expected[i].probe_row);
    EXPECT_EQ(got[i].batch, expected[i].batch);
    EXPECT_EQ(got[i].row, expected[i].row);
  }
}

TEST(ProbeBatchTest, AppendsToExistingMatches) {
  JoinHashTable table(0);
  ASSERT_TRUE(table.AddBatch(KeyBatch({1, 2})).ok());
  table.Finalize();
  std::vector<JoinMatch> out = {{99, 99, 99}};
  std::vector<int64_t> probe = {1};
  table.ProbeBatch(std::span<const int64_t>(probe), &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].probe_row, 99u);  // pre-existing entry untouched
  EXPECT_EQ(out[1].probe_row, 0u);
}

TEST(ProbeBatchTest, EmptyTableAndEmptyBatch) {
  JoinHashTable empty(0);
  empty.Finalize();
  std::vector<JoinMatch> out;
  std::vector<int64_t> probe = {1, 2, 3};
  empty.ProbeBatch(std::span<const int64_t>(probe), &out);
  EXPECT_TRUE(out.empty());

  JoinHashTable table(0);
  ASSERT_TRUE(table.AddBatch(KeyBatch({1, 2, 3})).ok());
  table.Finalize();
  table.ProbeBatch(std::span<const int64_t>(), &out);
  EXPECT_TRUE(out.empty());
}

TEST(ProbeBatchTest, ContainsEarlyExitAgreesWithForEachMatch) {
  JoinHashTable table(0);
  const auto keys = RandomKeys(4000, 81, 500);
  ASSERT_TRUE(table.AddBatch(KeyBatch(keys)).ok());
  table.Finalize();
  for (int64_t k = -10; k < 520; ++k) {
    bool any = false;
    table.ForEachMatch(k, [&](uint32_t, uint32_t) { any = true; });
    EXPECT_EQ(table.Contains(k), any) << "key " << k;
  }
}

TEST(ProbeBatchTest, BuildShapeStats) {
  JoinHashTable table(0);
  std::vector<int64_t> keys(100, 42);  // one key, chain of 100
  for (int64_t k = 0; k < 28; ++k) keys.push_back(k);
  ASSERT_TRUE(table.AddBatch(KeyBatch(keys)).ok());
  table.Finalize();
  EXPECT_GE(table.num_buckets(), 2 * table.num_rows() / 2);  // pow2 >= 2x
  EXPECT_GT(table.load_factor(), 0.0);
  EXPECT_LE(table.load_factor(), 0.5 + 1e-9);
  EXPECT_GE(table.max_chain_length(), 100u);  // the duplicate chain

  JoinHashTable empty(0);
  empty.Finalize();
  EXPECT_EQ(empty.load_factor(), 0.0);
  EXPECT_EQ(empty.max_chain_length(), 0u);
}

// ------------------------------ BufferPool --------------------------------

TEST(BufferPoolTest, RecyclesCapacityThroughShare) {
  auto pool = BufferPool::Create();
  EXPECT_EQ(pool->free_buffers(), 0u);
  EXPECT_TRUE(pool->Acquire().empty());  // empty pool hands out fresh buffers

  std::vector<uint8_t> buf(4096, 0xab);
  const uint8_t* storage = buf.data();
  {
    auto shared = pool->Share(std::move(buf));
    EXPECT_EQ(shared->size(), 4096u);
    EXPECT_EQ(pool->free_buffers(), 0u);  // still held by the payload
  }
  EXPECT_EQ(pool->free_buffers(), 1u);  // released -> recycled

  std::vector<uint8_t> reused = pool->Acquire();
  EXPECT_TRUE(reused.empty());
  EXPECT_GE(reused.capacity(), 4096u);  // same allocation, cleared
  EXPECT_EQ(reused.data(), storage);
  EXPECT_EQ(pool->free_buffers(), 0u);
}

TEST(BufferPoolTest, PayloadOutlivesPoolHandle) {
  std::shared_ptr<const std::vector<uint8_t>> payload;
  {
    auto pool = BufferPool::Create();
    payload = pool->Share(std::vector<uint8_t>{1, 2, 3});
  }  // pool handle dropped; deleter keeps the pool alive
  ASSERT_EQ(payload->size(), 3u);
  EXPECT_EQ((*payload)[2], 3);
  payload.reset();  // recycles into the (now unreachable) pool, then frees
}

TEST(BufferPoolTest, BoundedFreeList) {
  auto pool = BufferPool::Create(/*max_buffers=*/2);
  for (int i = 0; i < 5; ++i) {
    pool->Share(std::vector<uint8_t>(16, 1)).reset();
  }
  EXPECT_EQ(pool->free_buffers(), 2u);
}

}  // namespace
}  // namespace hybridjoin
