// Facade-level tests for HybridWarehouse: DDL/loading error handling and
// the page-cache controls.

#include <gtest/gtest.h>

#include "hybrid/warehouse.h"
#include "workload/loader.h"

namespace hybridjoin {
namespace {

SchemaPtr TinySchema() {
  return Schema::Make({{"k", DataType::kInt32}, {"v", DataType::kString}});
}

TEST(WarehouseTest, DdlErrorHandling) {
  SimulationConfig config;
  config.db.num_workers = 2;
  config.jen_workers = 2;
  HybridWarehouse hw(config);

  ASSERT_TRUE(hw.CreateDbTable({"t", TinySchema(), "k"}).ok());
  EXPECT_EQ(hw.CreateDbTable({"t", TinySchema(), "k"}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(hw.CreateDbTable({"u", TinySchema(), "missing"}).ok());
  EXPECT_FALSE(hw.CreateDbIndex("nope", {"k"}).ok());
  EXPECT_FALSE(hw.CreateDbIndex("t", {"v"}).ok());  // string column

  RecordBatch rows(TinySchema());
  rows.AppendRow({Value(int32_t{1}), Value("a")});
  ASSERT_TRUE(hw.LoadDbTable("t", rows).ok());
  EXPECT_FALSE(hw.LoadDbTable("nope", rows).ok());
  RecordBatch wrong(Schema::Make({{"z", DataType::kInt32}}));
  wrong.AppendRow({Value(int32_t{1})});
  EXPECT_FALSE(hw.LoadDbTable("t", wrong).ok());
}

TEST(WarehouseTest, HdfsTableLifecycle) {
  SimulationConfig config;
  config.db.num_workers = 2;
  config.jen_workers = 2;
  HybridWarehouse hw(config);
  RecordBatch rows(TinySchema());
  for (int32_t i = 0; i < 100; ++i) {
    rows.AppendRow({Value(i), Value("s" + std::to_string(i))});
  }
  ASSERT_TRUE(
      hw.WriteHdfsTable("logs", TinySchema(), HdfsWriteOptions{}, {rows})
          .ok());
  // Same name again: the file already exists.
  EXPECT_FALSE(
      hw.WriteHdfsTable("logs", TinySchema(), HdfsWriteOptions{}, {rows})
          .ok());
  auto meta = hw.context().hcatalog().Lookup("logs");
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->num_rows, 100u);
}

TEST(WarehouseTest, DropHdfsCachesForcesColdReads) {
  WorkloadConfig wc;
  wc.num_join_keys = 256;
  wc.t_rows = 4000;
  wc.l_rows = 30000;
  auto workload = Workload::Generate(wc, {0.3, 0.3, 0.5, 0.5});
  ASSERT_TRUE(workload.ok());
  SimulationConfig config;
  config.db.num_workers = 2;
  config.jen_workers = 2;
  config.bloom.expected_keys = wc.num_join_keys;
  config.datanode.disk_read_bps = 2 * 1024 * 1024;  // slow cold disk
  config.datanode.cache_read_bps = 0;               // warm unlimited
  HybridWarehouse hw(config);
  ASSERT_TRUE(LoadWorkload(&hw, *workload).ok());
  const HybridQuery q = workload->MakeQuery();

  auto cold1 = hw.Execute(q, JoinAlgorithm::kRepartition);
  ASSERT_TRUE(cold1.ok());
  auto warm = hw.Execute(q, JoinAlgorithm::kRepartition);
  ASSERT_TRUE(warm.ok());
  hw.DropHdfsCaches();
  auto cold2 = hw.Execute(q, JoinAlgorithm::kRepartition);
  ASSERT_TRUE(cold2.ok());
  // Warm run beats both cold runs clearly on a 2 MB/s disk.
  EXPECT_LT(warm->report.wall_seconds,
            cold1->report.wall_seconds * 0.7);
  EXPECT_LT(warm->report.wall_seconds,
            cold2->report.wall_seconds * 0.7);
}

}  // namespace
}  // namespace hybridjoin
