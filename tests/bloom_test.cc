// Unit + property tests for the Bloom filter, including the paper's sizing
// (8 bits/key, k=2 -> ~5% FPR) and the OR-combination used for the global
// filter.

#include <gtest/gtest.h>

#include "bloom/bloom_filter.h"
#include "common/random.h"

namespace hybridjoin {
namespace {

TEST(BloomParamsTest, SizingRoundsToWords) {
  auto p = BloomParams::ForKeys(1000, 8.0, 2);
  EXPECT_EQ(p.num_bits % 64, 0u);
  EXPECT_GE(p.num_bits, 8000u);
  EXPECT_EQ(p.num_hashes, 2u);
  // Degenerate inputs still produce a valid filter.
  auto tiny = BloomParams::ForKeys(0, 8.0, 0);
  EXPECT_GE(tiny.num_bits, 64u);
  EXPECT_GE(tiny.num_hashes, 1u);
}

TEST(BloomParamsTest, ExpectedFprMatchesFormula) {
  // Paper configuration: 8 bits/key, 2 hashes -> (1 - e^-0.25)^2 ~ 4.9%.
  auto p = BloomParams::ForKeys(1 << 20, 8.0, 2);
  EXPECT_NEAR(p.ExpectedFpr(1 << 20), 0.0489, 0.002);
}

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter bf(BloomParams::ForKeys(10000));
  for (int64_t k = 0; k < 10000; ++k) bf.Add(k * 7919);
  for (int64_t k = 0; k < 10000; ++k) {
    EXPECT_TRUE(bf.MayContain(k * 7919));
  }
}

TEST(BloomFilterTest, MeasuredFprNearExpected) {
  const uint64_t n = 1 << 15;
  BloomFilter bf(BloomParams::ForKeys(n, 8.0, 2));
  for (uint64_t k = 0; k < n; ++k) bf.Add(static_cast<int64_t>(k));
  int64_t false_positives = 0;
  const int64_t probes = 100000;
  for (int64_t k = 0; k < probes; ++k) {
    if (bf.MayContain(static_cast<int64_t>(n) + k)) ++false_positives;
  }
  const double fpr =
      static_cast<double>(false_positives) / static_cast<double>(probes);
  EXPECT_NEAR(fpr, bf.params().ExpectedFpr(n), 0.015);
}

// The guarantee documented on BloomParams::ExpectedFpr: across filter
// sizes, the observed false-positive rate stays within 2x of the formula's
// prediction (and never degenerates to ~0, which would indicate the probe
// keys alias the inserted ones).
TEST(BloomFilterTest, ObservedFprWithinTwiceExpectedAcrossSizes) {
  for (const uint64_t n : {uint64_t{1} << 12, uint64_t{1} << 14,
                           uint64_t{1} << 16}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    BloomFilter bf(BloomParams::ForKeys(n, 8.0, 2));
    for (uint64_t k = 0; k < n; ++k) {
      bf.Add(static_cast<int64_t>(k * 2654435761ULL));  // spread inserts
    }
    const double expected = bf.params().ExpectedFpr(n);  // ~4.9%
    int64_t false_positives = 0;
    const int64_t probes = 200000;
    for (int64_t k = 0; k < probes; ++k) {
      // Disjoint from every inserted key (odd vs even multiples).
      if (bf.MayContain(k * 2654435761LL + 1)) ++false_positives;
    }
    const double observed =
        static_cast<double>(false_positives) / static_cast<double>(probes);
    EXPECT_LE(observed, 2.0 * expected);
    EXPECT_GE(observed, expected / 4.0);
  }
}

TEST(BloomFilterTest, UnionEqualsJointConstruction) {
  const auto params = BloomParams::ForKeys(4096);
  BloomFilter a(params), b(params), joint(params);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const int64_t k = static_cast<int64_t>(rng.Next() >> 8);
    if (i % 2 == 0) {
      a.Add(k);
    } else {
      b.Add(k);
    }
    joint.Add(k);
  }
  ASSERT_TRUE(a.UnionWith(b).ok());
  EXPECT_EQ(a.FillRatio(), joint.FillRatio());
  // Spot-check membership equivalence on random probes.
  Rng probe(6);
  for (int i = 0; i < 5000; ++i) {
    const int64_t k = static_cast<int64_t>(probe.Next() >> 8);
    EXPECT_EQ(a.MayContain(k), joint.MayContain(k));
  }
}

TEST(BloomFilterTest, UnionRejectsMismatchedParams) {
  BloomFilter a(BloomParams{128, 2});
  BloomFilter b(BloomParams{256, 2});
  BloomFilter c(BloomParams{128, 3});
  EXPECT_FALSE(a.UnionWith(b).ok());
  EXPECT_FALSE(a.UnionWith(c).ok());
}

TEST(BloomFilterTest, SerdeRoundTrip) {
  BloomFilter bf(BloomParams::ForKeys(1000, 10.0, 3));
  for (int64_t k = 0; k < 500; ++k) bf.Add(k * 3 + 1);
  auto decoded = BloomFilter::Deserialize(bf.Serialize());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->params(), bf.params());
  EXPECT_EQ(decoded->FillRatio(), bf.FillRatio());
  for (int64_t k = 0; k < 500; ++k) {
    EXPECT_TRUE(decoded->MayContain(k * 3 + 1));
  }
}

TEST(BloomFilterTest, DeserializeRejectsGarbage) {
  std::vector<uint8_t> short_buf = {1, 2, 3};
  EXPECT_FALSE(BloomFilter::Deserialize(short_buf).ok());

  BinaryWriter w;
  w.PutU64(63);  // not a multiple of 64
  w.PutU32(2);
  EXPECT_FALSE(BloomFilter::Deserialize(w.buffer()).ok());

  BinaryWriter w2;
  w2.PutU64(1ULL << 50);  // implausibly large
  w2.PutU32(2);
  EXPECT_FALSE(BloomFilter::Deserialize(w2.buffer()).ok());

  BinaryWriter w3;  // truncated body
  w3.PutU64(128);
  w3.PutU32(2);
  w3.PutU64(0);  // only one of two words
  EXPECT_FALSE(BloomFilter::Deserialize(w3.buffer()).ok());
}

TEST(BloomFilterTest, FillRatioGrowsWithInsertions) {
  BloomFilter bf(BloomParams::ForKeys(1000));
  EXPECT_EQ(bf.FillRatio(), 0.0);
  bf.Add(1);
  const double one = bf.FillRatio();
  EXPECT_GT(one, 0.0);
  for (int64_t k = 2; k < 500; ++k) bf.Add(k);
  EXPECT_GT(bf.FillRatio(), one);
  EXPECT_LT(bf.FillRatio(), 1.0);
}

TEST(BloomFilterTest, ByteSizeTracksBits) {
  BloomFilter small(BloomParams{1024, 2});
  BloomFilter big(BloomParams{1024 * 64, 2});
  EXPECT_LT(small.ByteSize(), big.ByteSize());
  EXPECT_GE(big.ByteSize(), 64u * 1024 / 8);
}

}  // namespace
}  // namespace hybridjoin
