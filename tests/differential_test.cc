// The differential harness as a fixed-seed tier-1 suite: randomized cases
// against the reference executor (with and without faults), seed
// reproducibility, clean failure under unrecoverable loss, and the named
// edge-case regressions (empty filtered sides, one group, disjoint keys,
// single-row tables, a DataNode with zero blocks) run through every
// algorithm variant. docs/testing.md describes the methodology; the
// open-ended sweep lives in tools/fuzz_joins.
//
// Kept deliberately below typical per-test CI timeouts: small tables, a
// handful of seeds, 5 s receive timeouts bounding any faulted run.

#include <gtest/gtest.h>

#include "hybrid/reference.h"
#include "testing/differential.h"
#include "workload/loader.h"

namespace hybridjoin {
namespace {

using testing_support::CompareBatches;
using testing_support::DiffCase;
using testing_support::DiffCaseReport;
using testing_support::DifferentialVariants;
using testing_support::MakeRandomCase;
using testing_support::RunDifferentialCase;
using testing_support::RunVariant;

// ---------------------------------------------------------------------------
// Randomized fixed-seed suite.

TEST(DifferentialSuite, FaultFreeSeedsMatchReference) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const DiffCaseReport report = RunDifferentialCase(seed, "none");
    EXPECT_TRUE(report.ok()) << report.Summary();
  }
}

TEST(DifferentialSuite, RecoverableFaultsStillMatchReference) {
  // flaky = delays + transient failures + truncated retries + duplicates;
  // retry/dedup must absorb all of it, byte for byte.
  for (uint64_t seed = 10; seed <= 12; ++seed) {
    const DiffCaseReport report = RunDifferentialCase(seed, "flaky");
    EXPECT_TRUE(report.ok()) << report.Summary();
  }
  const DiffCaseReport stalled = RunDifferentialCase(20, "stall");
  EXPECT_TRUE(stalled.ok()) << stalled.Summary();
}

TEST(DifferentialSuite, LossyFailsCleanlyOrMatches) {
  // Hard loss is not recoverable: every variant must either still match the
  // oracle or surface a non-OK Status — within the recv timeout, no hangs.
  const DiffCaseReport report =
      RunDifferentialCase(30, "lossy", /*recv_timeout_ms=*/2000);
  EXPECT_TRUE(report.ok()) << report.Summary();
  for (const auto& outcome : report.outcomes) {
    if (!outcome.status.ok()) {
      EXPECT_FALSE(outcome.matched);
    }
  }
}

TEST(DifferentialSuite, MorselParallelExecutionMatchesReference) {
  // exec_threads=3: sharded build, parallel scan/probe and partial-aggregate
  // merge on every variant — still byte-for-byte against the single-node
  // oracle, fault-free and under the recoverable flaky profile.
  for (uint64_t seed = 5; seed <= 7; ++seed) {
    const DiffCaseReport report =
        RunDifferentialCase(seed, "none", /*recv_timeout_ms=*/5000,
                            /*exec_threads=*/3);
    EXPECT_TRUE(report.ok()) << report.Summary();
  }
  const DiffCaseReport flaky =
      RunDifferentialCase(13, "flaky", /*recv_timeout_ms=*/5000,
                          /*exec_threads=*/3);
  EXPECT_TRUE(flaky.ok()) << flaky.Summary();
}

TEST(DifferentialSuite, FailingReportPrintsExecThreads) {
  DiffCaseReport report;
  report.seed = 9;
  report.profile = "none";
  report.exec_threads = 4;
  report.profile_recoverable = true;
  report.outcomes.push_back(
      {"db", Status::Internal("synthetic"), false, ""});
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.Summary().find("--exec_threads=4"), std::string::npos)
      << report.Summary();
}

TEST(DifferentialSuite, SeedReproducesIdenticalOutcome) {
  // The reproduction workflow (fuzz_joins --seed=N): the same seed must
  // yield the same case and, under loss, the same per-variant verdicts.
  const DiffCase a = MakeRandomCase(77);
  const DiffCase b = MakeRandomCase(77);
  EXPECT_EQ(a.summary, b.summary);
  EXPECT_NE(a.summary, MakeRandomCase(78).summary);

  const DiffCaseReport r1 = RunDifferentialCase(31, "lossy", 2000);
  const DiffCaseReport r2 = RunDifferentialCase(31, "lossy", 2000);
  ASSERT_EQ(r1.outcomes.size(), r2.outcomes.size());
  for (size_t i = 0; i < r1.outcomes.size(); ++i) {
    EXPECT_EQ(r1.outcomes[i].status.code(), r2.outcomes[i].status.code())
        << r1.outcomes[i].variant;
    EXPECT_EQ(r1.outcomes[i].matched, r2.outcomes[i].matched)
        << r1.outcomes[i].variant;
  }
}

TEST(DifferentialSuite, FailingReportPrintsReproducingSeed) {
  DiffCaseReport report;
  report.seed = 123;
  report.profile = "flaky";
  report.profile_recoverable = true;
  report.outcomes.push_back(
      {"zigzag", Status::TimedOut("recv timeout"), false, ""});
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.Summary().find("fuzz_joins --seed=123 --profiles=flaky"),
            std::string::npos)
      << report.Summary();
}

// ---------------------------------------------------------------------------
// Skewed-key workloads: the skew-aware hybrid shuffle route vs the oracle.

TEST(DifferentialSkew, SkewedSeedsMatchReference) {
  // zipf_s=1.3 concentrates ~25-30% of both tables on the top key at these
  // case sizes, enough for PickHotKeys to promote it; the hybrid route must
  // stay byte-identical to the reference.
  for (uint64_t seed = 41; seed <= 43; ++seed) {
    const DiffCaseReport report = RunDifferentialCase(
        seed, "none", /*recv_timeout_ms=*/5000, /*exec_threads=*/1,
        /*profile_out_prefix=*/"", /*mem_budget_bytes=*/0, /*zipf_s=*/1.3);
    EXPECT_TRUE(report.ok()) << report.Summary();
  }
}

TEST(DifferentialSkew, SkewSurvivesFaultsBudgetsAndThreads) {
  const DiffCaseReport flaky = RunDifferentialCase(
      44, "flaky", 5000, /*exec_threads=*/1, "", 0, /*zipf_s=*/1.3);
  EXPECT_TRUE(flaky.ok()) << flaky.Summary();
  const DiffCaseReport budgeted = RunDifferentialCase(
      45, "none", 5000, /*exec_threads=*/3, "", /*mem_budget_bytes=*/65536,
      /*zipf_s=*/1.3);
  EXPECT_TRUE(budgeted.ok()) << budgeted.Summary();
  const DiffCaseReport lossy = RunDifferentialCase(
      46, "lossy", /*recv_timeout_ms=*/2000, 1, "", 0, /*zipf_s=*/1.3);
  EXPECT_TRUE(lossy.ok()) << lossy.Summary();
}

TEST(DifferentialSkew, FailingReportPrintsZipf) {
  DiffCaseReport report;
  report.seed = 9;
  report.profile = "none";
  report.zipf_s = 1.3;
  report.profile_recoverable = true;
  report.outcomes.push_back(
      {"repartition_bloom", Status::Internal("synthetic"), false, ""});
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.Summary().find("--zipf_s=1.3"), std::string::npos)
      << report.Summary();
}

TEST(DifferentialSkew, HotRouteEngagesAndMatchesOracle) {
  // A workload skewed enough that the hot route provably engages: assert
  // the shuffle.* counters fired AND the result still equals the oracle.
  WorkloadConfig wc;
  wc.num_join_keys = 512;
  wc.t_rows = 6000;
  wc.l_rows = 24000;
  wc.zipf_s = 1.3;
  // Full key windows (st = sl = 1) so the hot key participates in the join
  // regardless of where its key-hash lands; selectivity comes from the
  // independent predicates alone.
  auto workload = Workload::Generate(wc, {0.3, 0.3, 1.0, 1.0});
  ASSERT_TRUE(workload.ok());
  const HybridQuery query = workload->MakeQuery();
  auto expected =
      RunReferenceJoin({workload->t_rows()}, workload->l_batches(), query);
  ASSERT_TRUE(expected.ok());

  SimulationConfig config;
  config.db.num_workers = 2;
  config.jen_workers = 4;
  config.bloom.expected_keys = wc.num_join_keys;
  HybridWarehouse hw(config);
  ASSERT_TRUE(LoadWorkload(&hw, *workload, {}).ok());

  auto result = hw.Execute(query, JoinAlgorithm::kRepartitionBloom);
  ASSERT_TRUE(result.ok()) << result.status();
  auto diff = CompareBatches(*expected, result->rows);
  EXPECT_FALSE(diff.has_value()) << *diff;
  EXPECT_GT(result->report.Counter(metric::kShuffleHotKeys), 0);
  EXPECT_GT(result->report.Counter(metric::kShuffleHotRowsBuild), 0);
  EXPECT_GT(result->report.Counter(metric::kShuffleHotRowsProbe), 0);
  EXPECT_GT(result->report.Counter(metric::kShuffleBroadcastBytes), 0);

  // The off switch: same workload, hybrid route disabled, same answer and
  // no hot-route traffic.
  SimulationConfig off = config;
  off.skew.enabled = false;
  HybridWarehouse hw_off(off);
  ASSERT_TRUE(LoadWorkload(&hw_off, *workload, {}).ok());
  auto off_result = hw_off.Execute(query, JoinAlgorithm::kRepartitionBloom);
  ASSERT_TRUE(off_result.ok()) << off_result.status();
  auto off_diff = CompareBatches(*expected, off_result->rows);
  EXPECT_FALSE(off_diff.has_value()) << *off_diff;
  EXPECT_EQ(off_result->report.Counter(metric::kShuffleHotKeys), 0);
  EXPECT_EQ(off_result->report.Counter(metric::kShuffleHotRowsBuild), 0);
}

// ---------------------------------------------------------------------------
// Named edge-case regressions, hand-built tables, all variants vs oracle.

struct TRow {
  int32_t join_key;
  int32_t cor;
  int32_t date;
};

struct LRow {
  int32_t join_key;
  int32_t cor;
  int32_t date;
  std::string group;
};

RecordBatch MakeT(const std::vector<TRow>& rows) {
  RecordBatch t(Workload::TSchema());
  int64_t uniq = 0;
  for (const TRow& r : rows) {
    t.AppendRow({Value(uniq++), Value(r.join_key), Value(r.cor),
                 Value(int32_t{0}), Value(r.date), Value(std::string("x")),
                 Value(int32_t{0}), Value(int32_t{0})});
  }
  return t;
}

RecordBatch MakeL(const std::vector<LRow>& rows) {
  RecordBatch l(Workload::LSchema());
  for (const LRow& r : rows) {
    l.AppendRow({Value(r.join_key), Value(r.cor), Value(int32_t{0}),
                 Value(r.date), Value(r.group), Value(std::string("d"))});
  }
  return l;
}

HybridQuery EdgeQuery(int32_t t_cor_lit = 100, int32_t l_cor_lit = 100) {
  HybridQuery q;
  q.db.table = "T";
  q.db.alias = "T";
  q.db.predicate = Cmp("corPred", CmpOp::kLt, Value(t_cor_lit));
  q.db.projection = {"joinKey", "predAfterJoin"};
  q.db.join_key = "joinKey";
  q.hdfs.table = "L";
  q.hdfs.alias = "L";
  q.hdfs.predicate = Cmp("corPred", CmpOp::kLt, Value(l_cor_lit));
  q.hdfs.projection = {"joinKey", "predAfterJoin", "groupByExtractCol"};
  q.hdfs.join_key = "joinKey";
  q.post_join_predicate =
      DiffRange("T.predAfterJoin", "L.predAfterJoin", 0, 1);
  q.agg = AggSpec::CountStar("L.groupByExtractCol", /*extract_group=*/true);
  return q;
}

/// Runs every variant of `query` over hand-built tables and expects each to
/// equal the reference result exactly (including when that result is empty).
void ExpectAllVariantsMatch(const RecordBatch& t, const RecordBatch& l,
                            const HybridQuery& query, uint32_t db_workers,
                            uint32_t jen_workers, uint32_t rows_per_block,
                            const std::string& profile = "none") {
  auto expected = RunReferenceJoin({t}, {l}, query);
  ASSERT_TRUE(expected.ok()) << expected.status();

  for (const std::string& variant : DifferentialVariants()) {
    SCOPED_TRACE(variant);
    SimulationConfig config;
    config.db.num_workers = db_workers;
    config.jen_workers = jen_workers;
    config.bloom.expected_keys = 256;
    config.net.recv_timeout_ms = 5000;
    auto fault = FaultProfile::ByName(profile, /*seed=*/42, jen_workers);
    ASSERT_TRUE(fault.ok());
    config.fault = *fault;
    HybridWarehouse hw(config);

    ASSERT_TRUE(
        hw.CreateDbTable({"T", Workload::TSchema(), "uniqKey"}).ok());
    ASSERT_TRUE(hw.LoadDbTable("T", t).ok());
    ASSERT_TRUE(hw.CreateDbIndex("T", {"corPred", "indPred"}).ok());
    ASSERT_TRUE(
        hw.CreateDbIndex("T", {"corPred", "indPred", "joinKey"}).ok());
    HdfsWriteOptions write;
    write.rows_per_block = rows_per_block;
    ASSERT_TRUE(
        hw.WriteHdfsTable("L", Workload::LSchema(), write, {l}).ok());

    auto result = RunVariant(&hw, query, variant);
    ASSERT_TRUE(result.ok()) << result.status();
    auto diff = CompareBatches(*expected, result->rows);
    EXPECT_FALSE(diff.has_value()) << *diff;
  }
}

std::vector<TRow> SomeT() {
  return {{1, 5, 16000}, {2, 5, 16001}, {3, 5, 16002}, {4, 5, 16000}};
}

std::vector<LRow> SomeL() {
  return {{1, 5, 16000, "g1"},
          {2, 5, 16001, "g2"},
          {3, 5, 16002, "g3"},
          {1, 5, 16000, "g1"}};
}

TEST(DifferentialEdgeCases, EmptyTPrimeAfterPredicate) {
  // T's local predicate rejects every row; T' is empty on every DB worker.
  ExpectAllVariantsMatch(MakeT(SomeT()), MakeL(SomeL()),
                         EdgeQuery(/*t_cor_lit=*/0, /*l_cor_lit=*/100), 2, 3,
                         4096);
}

TEST(DifferentialEdgeCases, EmptyLPrimeAfterPredicate) {
  ExpectAllVariantsMatch(MakeT(SomeT()), MakeL(SomeL()),
                         EdgeQuery(/*t_cor_lit=*/100, /*l_cor_lit=*/0), 2, 3,
                         4096);
}

TEST(DifferentialEdgeCases, AllRowsInOneGroup) {
  std::vector<LRow> l = SomeL();
  for (LRow& r : l) r.group = "g7";
  ExpectAllVariantsMatch(MakeT(SomeT()), MakeL(l), EdgeQuery(), 3, 2, 4096);
}

TEST(DifferentialEdgeCases, JoinKeyAbsentFromOneSide) {
  // Disjoint key domains: a non-empty T' and L' joining to zero rows.
  std::vector<LRow> l = SomeL();
  for (LRow& r : l) r.join_key += 1000;
  ExpectAllVariantsMatch(MakeT(SomeT()), MakeL(l), EdgeQuery(), 2, 2, 4096);
}

TEST(DifferentialEdgeCases, SingleRowTables) {
  ExpectAllVariantsMatch(MakeT({{7, 5, 16000}}), MakeL({{7, 5, 16000, "g3"}}),
                         EdgeQuery(), 3, 3, 4096);
}

TEST(DifferentialEdgeCases, ZeroBlocksOnOneDataNode) {
  // Four rows in one HDFS block, five JEN workers: most DataNodes hold no
  // block of L at all, so their workers scan nothing but must still take
  // part in every shuffle/broadcast/aggregation round.
  ExpectAllVariantsMatch(MakeT(SomeT()), MakeL(SomeL()), EdgeQuery(), 2, 5,
                         /*rows_per_block=*/4096);
}

TEST(DifferentialEdgeCases, EdgeCasesSurviveFlakyNetwork) {
  // The same degenerate shapes under the adversarial recoverable profile —
  // empty streams are where retry/EOS protocol bugs hide.
  ExpectAllVariantsMatch(MakeT(SomeT()), MakeL(SomeL()),
                         EdgeQuery(/*t_cor_lit=*/0, /*l_cor_lit=*/100), 2, 3,
                         4096, "flaky");
  ExpectAllVariantsMatch(MakeT({{7, 5, 16000}}), MakeL({{7, 5, 16000, "g3"}}),
                         EdgeQuery(), 2, 2, 4096, "flaky");
}

}  // namespace
}  // namespace hybridjoin
