// Tests for the tracing subsystem: histogram percentile math, span nesting
// and node attribution, Chrome trace-event JSON well-formedness (verified by
// parsing it back), and an end-to-end traced join whose report must carry
// the paper-relevant latency histograms.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "hybrid/warehouse.h"
#include "trace/chrome_trace.h"
#include "trace/tracer.h"
#include "workload/loader.h"

namespace hybridjoin {
namespace {

// ---------------------------------------------------------------------------
// A minimal JSON value + recursive-descent parser, enough to round-trip the
// Chrome trace output (objects, arrays, strings with escapes, numbers,
// booleans, null). Failing to parse means the exporter emitted bad JSON.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool Has(const std::string& key) const {
    return kind == Kind::kObject && object.count(key) > 0;
  }
  const JsonValue& At(const std::string& key) const {
    static const JsonValue kNullValue;
    auto it = object.find(key);
    return it == object.end() ? kNullValue : it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool Parse(JsonValue* out) {
    Skip();
    if (!ParseValue(out)) return false;
    Skip();
    return pos_ == s_.size();
  }

 private:
  void Skip() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    const size_t len = std::strlen(word);
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->str);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    Skip();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      Skip();
      std::string key;
      if (!ParseString(&key)) return false;
      Skip();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      Skip();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      Skip();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    Skip();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      Skip();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      Skip();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return false;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          const unsigned long code =
              std::strtoul(s_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          if (code > 0x7f) return false;  // exporter only emits ASCII
          out->push_back(static_cast<char>(code));
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue* out) {
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    out->number = std::strtod(start, &end);
    if (end == start) return false;
    out->kind = JsonValue::Kind::kNumber;
    pos_ += static_cast<size_t>(end - start);
    return true;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  LatencyHistogram h;
  for (int64_t v = 0; v < 32; ++v) h.RecordMicros(v);
  EXPECT_EQ(h.Count(), 32);
  EXPECT_EQ(h.TotalMicros(), 31 * 32 / 2);
  // Values below the sub-bucket count land in unit buckets; percentiles of
  // the uniform 0..31 set are exact.
  EXPECT_EQ(h.PercentileMicros(50), 15);
  EXPECT_EQ(h.PercentileMicros(100), 31);
  const HistogramSummary s = h.Summarize();
  EXPECT_DOUBLE_EQ(s.min_seconds, 0.0);
  EXPECT_DOUBLE_EQ(s.max_seconds, 31e-6);
}

TEST(LatencyHistogramTest, UniformDistributionPercentilesWithinErrorBound) {
  LatencyHistogram h;
  for (int64_t v = 1; v <= 10000; ++v) h.RecordMicros(v);
  // The bucket layout bounds relative quantization error by ~6%, and
  // HighestEquivalent only rounds up.
  const struct {
    double percentile;
    double exact;
  } cases[] = {{50, 5000}, {95, 9500}, {99, 9900}};
  for (const auto& c : cases) {
    const auto got = static_cast<double>(h.PercentileMicros(c.percentile));
    EXPECT_GE(got, c.exact) << "p" << c.percentile;
    EXPECT_LE(got, c.exact * 1.07) << "p" << c.percentile;
  }
  const HistogramSummary s = h.Summarize();
  EXPECT_EQ(s.count, 10000);
  EXPECT_DOUBLE_EQ(s.min_seconds, 1e-6);
  EXPECT_DOUBLE_EQ(s.max_seconds, 10000e-6);
  EXPECT_LE(s.p50_seconds, s.p95_seconds);
  EXPECT_LE(s.p95_seconds, s.p99_seconds);
}

TEST(LatencyHistogramTest, BimodalDistribution) {
  LatencyHistogram h;
  for (int i = 0; i < 950; ++i) h.RecordMicros(100);
  for (int i = 0; i < 50; ++i) h.RecordMicros(100000);
  // p50 sits in the fast mode, p99 in the slow one.
  EXPECT_GE(h.PercentileMicros(50), 100);
  EXPECT_LE(h.PercentileMicros(50), 107);
  EXPECT_GE(h.PercentileMicros(99), 100000);
  EXPECT_LE(h.PercentileMicros(99), 107000);
}

TEST(LatencyHistogramTest, MergeAndReset) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 0; i < 100; ++i) a.RecordMicros(10);
  for (int i = 0; i < 100; ++i) b.RecordMicros(1000);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 200);
  EXPECT_EQ(a.PercentileMicros(25), 10);
  EXPECT_GE(a.PercentileMicros(75), 1000);
  const HistogramSummary s = a.Summarize();
  EXPECT_DOUBLE_EQ(s.min_seconds, 10e-6);
  a.Reset();
  EXPECT_EQ(a.Count(), 0);
  EXPECT_EQ(a.Summarize().count, 0);
}

TEST(LatencyHistogramTest, HugeValuesClampInsteadOfCrashing) {
  LatencyHistogram h;
  h.RecordMicros(INT64_MAX);
  h.RecordMicros(-5);  // treated as 0
  EXPECT_EQ(h.Count(), 2);
  EXPECT_GT(h.PercentileMicros(100), 0);
}

// ---------------------------------------------------------------------------
// Tracer / Span / ThreadScope
// ---------------------------------------------------------------------------

TEST(TracerTest, DisabledTracerRecordsNothing) {
  trace::Tracer tracer(/*enabled=*/false);
  {
    trace::Span span(&tracer, "x");
    EXPECT_FALSE(span.active());
  }
  {
    trace::Span span(nullptr, "y");
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(tracer.Snapshot().empty());
}

TEST(TracerTest, SpanNestingDepthAndAttribution) {
  trace::Tracer tracer(/*enabled=*/true);
  // Sleeps keep the three start timestamps distinct at µs resolution, so
  // the snapshot order is deterministic.
  const auto tick = std::chrono::microseconds(300);
  {
    trace::ThreadScope scope(NodeId::Hdfs(3), "jen_worker");
    trace::Span outer(&tracer, "outer", "driver");
    std::this_thread::sleep_for(tick);
    {
      trace::Span inner(&tracer, "inner", "join");
    }
    std::this_thread::sleep_for(tick);
    // Explicit node wins over the thread scope (still nested in `outer`).
    trace::Span other(&tracer, "other", "net", NodeId::Db(1));
    other.End();
    other.End();  // idempotent
  }
  const auto events = tracer.Snapshot();
  // Sorted by start time, parents before same-microsecond children.
  ASSERT_EQ(events.size(), 3u);

  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_TRUE(events[0].has_node);
  EXPECT_EQ(events[0].node, NodeId::Hdfs(3));
  EXPECT_STREQ(events[0].role, "jen_worker");

  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[1].node, NodeId::Hdfs(3));
  EXPECT_LE(events[1].dur_us, events[0].dur_us);
  EXPECT_GE(events[1].start_us, events[0].start_us);

  EXPECT_STREQ(events[2].name, "other");
  EXPECT_EQ(events[2].node, NodeId::Db(1));
  EXPECT_EQ(events[2].depth, 1);  // opened while `outer` was still active

  // Same thread, same tid on every event.
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_EQ(events[0].tid, events[2].tid);

  tracer.Clear();
  EXPECT_TRUE(tracer.Snapshot().empty());
}

TEST(TracerTest, ThreadScopeRestoresOuterAttribution) {
  trace::ThreadScope outer(NodeId::Db(0), "outer");
  {
    trace::ThreadScope inner(NodeId::Hdfs(1), "inner");
    NodeId node;
    const char* role = nullptr;
    ASSERT_TRUE(trace::ThreadScope::Current(&node, &role));
    EXPECT_EQ(node, NodeId::Hdfs(1));
    EXPECT_STREQ(role, "inner");
  }
  NodeId node;
  const char* role = nullptr;
  ASSERT_TRUE(trace::ThreadScope::Current(&node, &role));
  EXPECT_EQ(node, NodeId::Db(0));
  EXPECT_STREQ(role, "outer");
}

TEST(TracerTest, SpansFeedMetricsHistograms) {
  Metrics metrics;
  trace::Tracer tracer(/*enabled=*/true, &metrics);
  { trace::Span span(&tracer, "jen.probe", "join"); }
  { trace::Span span(&tracer, "jen.probe", "join"); }
  const auto histograms = metrics.HistogramSnapshot();
  auto it = histograms.find("jen.probe");
  ASSERT_NE(it, histograms.end());
  EXPECT_EQ(it->second.count, 2);
}

// ---------------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------------

TEST(ChromeTraceTest, PidMapping) {
  trace::TraceEvent engine;
  EXPECT_EQ(trace::ChromePid(engine), 0u);
  trace::TraceEvent db;
  db.node = NodeId::Db(2);
  db.has_node = true;
  EXPECT_EQ(trace::ChromePid(db), 3u);
  trace::TraceEvent hdfs;
  hdfs.node = NodeId::Hdfs(0);
  hdfs.has_node = true;
  EXPECT_EQ(trace::ChromePid(hdfs), 1001u);
}

TEST(ChromeTraceTest, JsonParsesBackWithMetadataAndEvents) {
  trace::Tracer tracer(/*enabled=*/true);
  {
    trace::ThreadScope scope(NodeId::Db(0), "db_worker");
    trace::Span outer(&tracer, "driver.db_worker", "driver");
    trace::Span inner(&tracer, "net.send", "intra_db");
    inner.set_bytes(123);
  }
  const std::string json = trace::ChromeTraceJson(tracer.Snapshot());

  JsonValue doc;
  ASSERT_TRUE(JsonParser(json).Parse(&doc)) << json;
  ASSERT_EQ(doc.kind, JsonValue::Kind::kObject);
  EXPECT_EQ(doc.At("displayTimeUnit").str, "ms");
  const JsonValue& events = doc.At("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::Kind::kArray);

  int x_events = 0;
  bool saw_process_name = false;
  bool saw_thread_name = false;
  bool saw_bytes = false;
  for (const JsonValue& e : events.array) {
    ASSERT_EQ(e.kind, JsonValue::Kind::kObject);
    const std::string& ph = e.At("ph").str;
    if (ph == "M") {
      if (e.At("name").str == "process_name" &&
          e.At("args").At("name").str == "db:0") {
        saw_process_name = true;
      }
      if (e.At("name").str == "thread_name") saw_thread_name = true;
      continue;
    }
    ASSERT_EQ(ph, "X");
    ++x_events;
    EXPECT_TRUE(e.Has("name"));
    EXPECT_TRUE(e.Has("cat"));
    EXPECT_TRUE(e.Has("ts"));
    EXPECT_TRUE(e.Has("dur"));
    EXPECT_TRUE(e.Has("pid"));
    EXPECT_TRUE(e.Has("tid"));
    EXPECT_GE(e.At("dur").number, 0.0);
    EXPECT_EQ(e.At("pid").number, 1.0);  // NodeId::Db(0)
    if (e.At("name").str == "net.send") {
      EXPECT_EQ(e.At("args").At("bytes").number, 123.0);
      EXPECT_EQ(e.At("args").At("depth").number, 1.0);
      saw_bytes = true;
    }
  }
  EXPECT_EQ(x_events, 2);
  EXPECT_TRUE(saw_process_name);
  EXPECT_TRUE(saw_thread_name);
  EXPECT_TRUE(saw_bytes);
}

TEST(ChromeTraceTest, EscapesSpecialCharactersInStrings) {
  // \x01 is split off so the 'f' is not swallowed by the hex escape.
  const char kName[] =
      "a\"b\\c\nd\te\x01"
      "f";
  trace::TraceEvent event;
  event.name = kName;
  event.category = "cat";
  const std::string json = trace::ChromeTraceJson({event});
  JsonValue doc;
  ASSERT_TRUE(JsonParser(json).Parse(&doc)) << json;
  const JsonValue& events = doc.At("traceEvents");
  ASSERT_FALSE(events.array.empty());
  bool found = false;
  for (const JsonValue& e : events.array) {
    if (e.At("ph").str == "X") {
      EXPECT_EQ(e.At("name").str, kName);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// End to end: a traced zigzag join must produce the paper-relevant latency
// histograms and a Perfetto-loadable trace whose top-level driver spans
// cover (nearly) the whole execution.
// ---------------------------------------------------------------------------

TEST(TraceEndToEndTest, TracedZigzagProducesHistogramsAndLoadableTrace) {
  WorkloadConfig wc;
  wc.num_join_keys = 256;
  wc.t_rows = 4000;
  wc.l_rows = 20000;
  auto workload = Workload::Generate(wc, {0.3, 0.3, 0.5, 0.5});
  ASSERT_TRUE(workload.ok());

  const std::string trace_path =
      ::testing::TempDir() + "trace_test_zigzag.json";
  SimulationConfig config;
  config.db.num_workers = 2;
  config.jen_workers = 2;
  config.bloom.expected_keys = wc.num_join_keys;
  config.trace.enabled = true;
  config.trace.chrome_out = trace_path;
  HybridWarehouse hw(config);
  ASSERT_TRUE(LoadWorkload(&hw, *workload).ok());

  auto result = hw.Execute(workload->MakeQuery(), JoinAlgorithm::kZigzag);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ExecutionReport& report = result->report;

  // The acceptance histograms, with sane percentile ordering.
  for (const char* name :
       {trace::span::kNetSend, trace::span::kJenProbe,
        trace::span::kJenShuffle}) {
    const HistogramSummary* h = report.Histogram(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_GT(h->count, 0) << name;
    EXPECT_LE(h->p50_seconds, h->p95_seconds) << name;
    EXPECT_LE(h->p95_seconds, h->p99_seconds) << name;
    EXPECT_LE(h->p99_seconds, report.wall_seconds) << name;
  }
  EXPECT_EQ(report.trace_file, trace_path);
  // The report prints the histogram section.
  EXPECT_NE(report.ToString().find("jen.probe"), std::string::npos);

  // The written file is valid JSON with the Chrome trace shape.
  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  JsonValue doc;
  ASSERT_TRUE(JsonParser(buffer.str()).Parse(&doc));
  const JsonValue& events = doc.At("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::Kind::kArray);

  // Top-level driver spans must cover >= 90% of the measured wall time.
  double min_start = 1e18;
  double max_end = 0.0;
  int driver_spans = 0;
  for (const JsonValue& e : events.array) {
    if (e.At("ph").str != "X") continue;
    EXPECT_GE(e.At("dur").number, 0.0);
    if (e.At("cat").str == "driver") {
      ++driver_spans;
      min_start = std::min(min_start, e.At("ts").number);
      max_end = std::max(max_end, e.At("ts").number + e.At("dur").number);
    }
  }
  EXPECT_EQ(driver_spans, 2 + 2);  // one per DB worker + one per JEN worker
  EXPECT_GE((max_end - min_start) * 1e-6, 0.9 * report.wall_seconds);

  std::remove(trace_path.c_str());
}

TEST(TraceEndToEndTest, TracingDisabledLeavesReportHistogramsEmpty) {
  WorkloadConfig wc;
  wc.num_join_keys = 128;
  wc.t_rows = 2000;
  wc.l_rows = 8000;
  auto workload = Workload::Generate(wc, {0.3, 0.3, 0.5, 0.5});
  ASSERT_TRUE(workload.ok());
  SimulationConfig config;
  config.db.num_workers = 2;
  config.jen_workers = 2;
  config.bloom.expected_keys = wc.num_join_keys;
  HybridWarehouse hw(config);
  ASSERT_TRUE(LoadWorkload(&hw, *workload).ok());
  auto result = hw.Execute(workload->MakeQuery(), JoinAlgorithm::kBroadcast);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->report.histograms.empty());
  EXPECT_TRUE(result->report.trace_file.empty());
}

}  // namespace
}  // namespace hybridjoin
