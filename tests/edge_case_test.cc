// Edge cases and failure injection for the distributed drivers: empty
// intermediate results (a classic distributed-deadlock source), tiny
// clusters, missing catalog entries, and throttled-run accounting.

#include <gtest/gtest.h>

#include <thread>

#include "hybrid/reference.h"
#include "hybrid/warehouse.h"
#include "workload/loader.h"

namespace hybridjoin {
namespace {

constexpr JoinAlgorithm kAll[] = {
    JoinAlgorithm::kDbSide,      JoinAlgorithm::kDbSideBloom,
    JoinAlgorithm::kBroadcast,   JoinAlgorithm::kRepartition,
    JoinAlgorithm::kRepartitionBloom, JoinAlgorithm::kZigzag};

class EdgeCaseTest : public testing::Test {
 protected:
  void Build(uint32_t db_workers, uint32_t jen_workers) {
    WorkloadConfig wc;
    wc.num_join_keys = 256;
    wc.t_rows = 5000;
    wc.l_rows = 20000;
    auto workload = Workload::Generate(wc, {0.2, 0.2, 0.5, 0.5});
    ASSERT_TRUE(workload.ok());
    workload_ = std::make_unique<Workload>(std::move(*workload));
    SimulationConfig config;
    config.db.num_workers = db_workers;
    config.jen_workers = jen_workers;
    config.bloom.expected_keys = wc.num_join_keys;
    hw_ = std::make_unique<HybridWarehouse>(config);
    ASSERT_TRUE(LoadWorkload(hw_.get(), *workload_).ok());
  }

  std::unique_ptr<Workload> workload_;
  std::unique_ptr<HybridWarehouse> hw_;
};

TEST_F(EdgeCaseTest, EmptyDbSideResultDoesNotDeadlock) {
  Build(3, 3);
  HybridQuery q = workload_->MakeQuery();
  // A predicate no T row satisfies: T' is empty on every worker.
  q.db.predicate = Cmp("corPred", CmpOp::kLt, -1);
  for (JoinAlgorithm algorithm : kAll) {
    SCOPED_TRACE(JoinAlgorithmName(algorithm));
    auto result = hw_->Execute(q, algorithm);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->rows.num_rows(), 0u);
  }
}

TEST_F(EdgeCaseTest, EmptyHdfsSideResultDoesNotDeadlock) {
  Build(3, 3);
  HybridQuery q = workload_->MakeQuery();
  q.hdfs.predicate = Cmp("corPred", CmpOp::kLt, -1);
  for (JoinAlgorithm algorithm : kAll) {
    SCOPED_TRACE(JoinAlgorithmName(algorithm));
    auto result = hw_->Execute(q, algorithm);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->rows.num_rows(), 0u);
  }
}

TEST_F(EdgeCaseTest, DisjointKeySetsJoinToNothing) {
  Build(2, 4);
  HybridQuery q = workload_->MakeQuery();
  // Join keys survive locally but never match: a date window no pair
  // satisfies.
  q.post_join_predicate =
      DiffRange("T.predAfterJoin", "L.predAfterJoin", 1000, 2000);
  for (JoinAlgorithm algorithm : kAll) {
    SCOPED_TRACE(JoinAlgorithmName(algorithm));
    auto result = hw_->Execute(q, algorithm);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->rows.num_rows(), 0u);
  }
}

TEST_F(EdgeCaseTest, SingleWorkerEachSide) {
  Build(1, 1);
  const HybridQuery q = workload_->MakeQuery();
  auto expected = RunReferenceJoin({workload_->t_rows()},
                                   workload_->l_batches(), q);
  ASSERT_TRUE(expected.ok());
  for (JoinAlgorithm algorithm : kAll) {
    SCOPED_TRACE(JoinAlgorithmName(algorithm));
    auto result = hw_->Execute(q, algorithm);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_EQ(result->rows.num_rows(), expected->num_rows());
  }
}

TEST_F(EdgeCaseTest, UnknownTablesRejectedBeforeThreading) {
  Build(2, 2);
  HybridQuery q = workload_->MakeQuery();
  q.db.table = "missing";
  EXPECT_FALSE(hw_->Execute(q, JoinAlgorithm::kZigzag).ok());
  q = workload_->MakeQuery();
  q.hdfs.table = "missing";
  EXPECT_FALSE(hw_->Execute(q, JoinAlgorithm::kZigzag).ok());
}

TEST_F(EdgeCaseTest, BadColumnReferencesRejectedBeforeThreading) {
  Build(2, 2);
  {
    HybridQuery q = workload_->MakeQuery();
    q.db.predicate = Cmp("notThere", CmpOp::kLt, 5);
    EXPECT_FALSE(hw_->Execute(q, JoinAlgorithm::kZigzag).ok());
  }
  {
    HybridQuery q = workload_->MakeQuery();
    q.hdfs.projection = {"joinKey", "notThere"};
    EXPECT_FALSE(hw_->Execute(q, JoinAlgorithm::kDbSide).ok());
  }
  {
    HybridQuery q = workload_->MakeQuery();
    q.agg.group_column = "L.bogus";
    EXPECT_FALSE(hw_->Execute(q, JoinAlgorithm::kBroadcast).ok());
  }
}

TEST_F(EdgeCaseTest, RepeatedExecutionsAreStable) {
  Build(2, 3);
  const HybridQuery q = workload_->MakeQuery();
  auto first = hw_->Execute(q, JoinAlgorithm::kZigzag);
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 3; ++i) {
    auto again = hw_->Execute(q, JoinAlgorithm::kZigzag);
    ASSERT_TRUE(again.ok());
    ASSERT_EQ(again->rows.num_rows(), first->rows.num_rows());
    for (size_t r = 0; r < first->rows.num_rows(); ++r) {
      EXPECT_EQ(again->rows.column(1).i64()[r],
                first->rows.column(1).i64()[r]);
    }
  }
}

// Throttled end-to-end: the network accounting must reflect each
// algorithm's data-movement profile.
TEST(ThrottledAccountingTest, CrossClusterBytesOrdering) {
  WorkloadConfig wc;
  wc.num_join_keys = 1024;
  wc.t_rows = 20000;
  wc.l_rows = 60000;
  auto workload = Workload::Generate(wc, {0.2, 0.3, 0.2, 0.2});
  ASSERT_TRUE(workload.ok());
  SimulationConfig config;
  config.db.num_workers = 3;
  config.jen_workers = 3;
  config.bloom.expected_keys = wc.num_join_keys;
  HybridWarehouse hw(config);
  ASSERT_TRUE(LoadWorkload(&hw, *workload).ok());
  const HybridQuery q = workload->MakeQuery();

  auto cross = [&](JoinAlgorithm algorithm) {
    auto result = hw.Execute(q, algorithm);
    EXPECT_TRUE(result.ok());
    return result.ok() ? result->report.network_bytes.count("cross_cluster")
                           ? result->report.network_bytes.at("cross_cluster")
                           : 0
                       : 0;
  };

  const int64_t db_plain = cross(JoinAlgorithm::kDbSide);
  const int64_t db_bf = cross(JoinAlgorithm::kDbSideBloom);
  const int64_t repart = cross(JoinAlgorithm::kRepartition);
  const int64_t zigzag = cross(JoinAlgorithm::kZigzag);
  const int64_t bcast = cross(JoinAlgorithm::kBroadcast);

  // BF prunes the cross transfer of the DB-side join (S_L' = 0.2).
  EXPECT_LT(db_bf, db_plain / 2);
  // Zigzag moves less across the switch than the plain repartition join
  // (T'' << T').
  EXPECT_LT(zigzag, repart);
  // Broadcast ships T' once per JEN worker: strictly more than the
  // repartition join's single copy.
  EXPECT_GT(bcast, repart);
}

TEST(ThrottledAccountingTest, ShuffleStaysInsideHdfs) {
  WorkloadConfig wc;
  wc.num_join_keys = 512;
  wc.t_rows = 8000;
  wc.l_rows = 30000;
  auto workload = Workload::Generate(wc, {0.2, 0.4, 0.5, 0.5});
  ASSERT_TRUE(workload.ok());
  SimulationConfig config;
  config.db.num_workers = 2;
  config.jen_workers = 3;
  config.bloom.expected_keys = wc.num_join_keys;
  HybridWarehouse hw(config);
  ASSERT_TRUE(LoadWorkload(&hw, *workload).ok());

  auto result = hw.Execute(workload->MakeQuery(), JoinAlgorithm::kZigzag);
  ASSERT_TRUE(result.ok());
  // The L' shuffle is intra-HDFS traffic; the DB-side join has none.
  EXPECT_GT(result->report.network_bytes.at("intra_hdfs"), 0);
  auto db_side = hw.Execute(workload->MakeQuery(), JoinAlgorithm::kDbSide);
  ASSERT_TRUE(db_side.ok());
  const auto it = db_side->report.network_bytes.find("intra_hdfs");
  const int64_t db_side_hdfs_bytes =
      it == db_side->report.network_bytes.end() ? 0 : it->second;
  EXPECT_LT(db_side_hdfs_bytes,
            result->report.network_bytes.at("intra_hdfs") / 4);
}

// Concurrent executions on one warehouse must not interfere: the per-query
// tag blocks isolate every channel.
TEST(ConcurrencyTest, ParallelQueriesProduceIndependentResults) {
  WorkloadConfig wc;
  wc.num_join_keys = 512;
  wc.t_rows = 8000;
  wc.l_rows = 30000;
  auto workload = Workload::Generate(wc, {0.2, 0.2, 0.5, 0.5});
  ASSERT_TRUE(workload.ok());
  SimulationConfig config;
  config.db.num_workers = 2;
  config.jen_workers = 2;
  config.bloom.expected_keys = wc.num_join_keys;
  HybridWarehouse hw(config);
  ASSERT_TRUE(LoadWorkload(&hw, *workload).ok());
  const HybridQuery query = workload->MakeQuery();
  auto baseline = hw.Execute(query, JoinAlgorithm::kZigzag);
  ASSERT_TRUE(baseline.ok());

  constexpr int kConcurrent = 3;
  std::vector<Result<QueryResult>> results(
      kConcurrent, Result<QueryResult>(Status::Internal("unset")));
  std::vector<std::thread> threads;
  const JoinAlgorithm algos[kConcurrent] = {JoinAlgorithm::kZigzag,
                                            JoinAlgorithm::kRepartition,
                                            JoinAlgorithm::kBroadcast};
  for (int i = 0; i < kConcurrent; ++i) {
    threads.emplace_back([&, i] { results[i] = hw.Execute(query, algos[i]); });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kConcurrent; ++i) {
    SCOPED_TRACE(JoinAlgorithmName(algos[i]));
    ASSERT_TRUE(results[i].ok()) << results[i].status();
    ASSERT_EQ(results[i]->rows.num_rows(), baseline->rows.num_rows());
    for (size_t r = 0; r < baseline->rows.num_rows(); ++r) {
      EXPECT_EQ(results[i]->rows.column(1).i64()[r],
                baseline->rows.column(1).i64()[r]);
    }
  }
}

}  // namespace
}  // namespace hybridjoin
