// Unit tests for the simulated interconnect: channels, EOS streams, flow
// classification and accounting, bandwidth throttling.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include <cstring>
#include <map>

#include "common/stopwatch.h"
#include "jen/exchange.h"
#include "net/fault_injector.h"
#include "net/network.h"
#include "trace/tracer.h"

namespace hybridjoin {
namespace {

std::vector<uint8_t> Bytes(size_t n, uint8_t fill = 7) {
  return std::vector<uint8_t>(n, fill);
}

TEST(FlowClassTest, Classification) {
  EXPECT_EQ(ClassifyFlow(NodeId::Db(1), NodeId::Db(1)), FlowClass::kLoopback);
  EXPECT_EQ(ClassifyFlow(NodeId::Db(0), NodeId::Db(1)), FlowClass::kIntraDb);
  EXPECT_EQ(ClassifyFlow(NodeId::Hdfs(0), NodeId::Hdfs(2)),
            FlowClass::kIntraHdfs);
  EXPECT_EQ(ClassifyFlow(NodeId::Db(0), NodeId::Hdfs(0)),
            FlowClass::kCrossCluster);
  EXPECT_EQ(ClassifyFlow(NodeId::Hdfs(3), NodeId::Db(2)),
            FlowClass::kCrossCluster);
}

TEST(NetworkTest, SendRecvPreservesPayloadAndSender) {
  Network net(NetworkConfig{}, 2, 2, nullptr);
  net.Send(NodeId::Db(1), NodeId::Hdfs(0), 5, Bytes(10, 42));
  Message m = net.Recv(NodeId::Hdfs(0), 5).value();
  EXPECT_FALSE(m.eos);
  EXPECT_EQ(m.from, NodeId::Db(1));
  ASSERT_EQ(m.payload->size(), 10u);
  EXPECT_EQ((*m.payload)[0], 42);
}

TEST(NetworkTest, TagsIsolateChannels) {
  Network net(NetworkConfig{}, 1, 1, nullptr);
  net.Send(NodeId::Db(0), NodeId::Hdfs(0), 1, Bytes(1, 1));
  net.Send(NodeId::Db(0), NodeId::Hdfs(0), 2, Bytes(1, 2));
  EXPECT_EQ((*net.Recv(NodeId::Hdfs(0), 2)->payload)[0], 2);
  EXPECT_EQ((*net.Recv(NodeId::Hdfs(0), 1)->payload)[0], 1);
}

TEST(NetworkTest, RecvBlocksUntilSend) {
  Network net(NetworkConfig{}, 1, 1, nullptr);
  std::atomic<bool> got{false};
  std::thread receiver([&] {
    net.Recv(NodeId::Db(0), 9);
    got = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  net.Send(NodeId::Hdfs(0), NodeId::Db(0), 9, Bytes(1));
  receiver.join();
  EXPECT_TRUE(got.load());
}

TEST(NetworkTest, StreamReceiverCountsEos) {
  Network net(NetworkConfig{}, 3, 1, nullptr);
  for (uint32_t s = 0; s < 3; ++s) {
    net.Send(NodeId::Db(s), NodeId::Hdfs(0), 4, Bytes(1, s));
    net.SendEos(NodeId::Db(s), NodeId::Hdfs(0), 4);
  }
  StreamReceiver receiver(&net, NodeId::Hdfs(0), 4, 3);
  int data = 0;
  while (receiver.Next()) ++data;
  EXPECT_EQ(data, 3);
}

TEST(NetworkTest, StreamReceiverZeroSendersEndsImmediately) {
  Network net(NetworkConfig{}, 1, 1, nullptr);
  StreamReceiver receiver(&net, NodeId::Hdfs(0), 4, 0);
  EXPECT_FALSE(receiver.Next().has_value());
}

TEST(NetworkTest, BytesAccountedPerFlowClass) {
  NetworkConfig config;
  config.per_message_overhead_bytes = 0;
  Network net(config, 2, 2, nullptr);
  net.Send(NodeId::Db(0), NodeId::Db(1), 1, Bytes(100));
  net.Send(NodeId::Hdfs(0), NodeId::Hdfs(1), 1, Bytes(200));
  net.Send(NodeId::Db(0), NodeId::Hdfs(1), 1, Bytes(300));
  net.Transfer(NodeId::Hdfs(0), NodeId::Hdfs(1), 50);
  EXPECT_EQ(net.BytesMoved(FlowClass::kIntraDb), 100);
  EXPECT_EQ(net.BytesMoved(FlowClass::kIntraHdfs), 250);
  EXPECT_EQ(net.BytesMoved(FlowClass::kCrossCluster), 300);
  EXPECT_EQ(net.BytesMoved(FlowClass::kLoopback), 0);
}

TEST(NetworkTest, TracedExchangeBytesMatchFlowClassAccounting) {
  // Every byte BytesMoved() counts must show up on exactly one send or
  // transfer span whose category is the flow-class name (EOS has no span,
  // so overhead is zeroed to keep the two accountings comparable).
  NetworkConfig config;
  config.per_message_overhead_bytes = 0;
  Network net(config, 2, 2, nullptr);
  trace::Tracer tracer(/*enabled=*/true);
  net.set_tracer(&tracer);

  const uint64_t tag = net.AllocateTagBlock();
  net.Send(NodeId::Db(0), NodeId::Db(1), tag, Bytes(100));
  net.Send(NodeId::Db(1), NodeId::Db(0), tag, Bytes(11));
  net.Send(NodeId::Hdfs(0), NodeId::Hdfs(1), tag, Bytes(200));
  net.Send(NodeId::Db(0), NodeId::Hdfs(1), tag, Bytes(300));
  net.SendControl(NodeId::Hdfs(1), NodeId::Db(0), tag, Bytes(40));
  net.Send(NodeId::Hdfs(0), NodeId::Hdfs(0), tag, Bytes(7));
  net.Transfer(NodeId::Hdfs(0), NodeId::Hdfs(1), 50);
  net.Recv(NodeId::Db(1), tag);
  net.Recv(NodeId::Db(0), tag);
  net.Recv(NodeId::Hdfs(1), tag);
  net.Recv(NodeId::Hdfs(1), tag);
  net.Recv(NodeId::Db(0), tag);
  net.Recv(NodeId::Hdfs(0), tag);

  std::map<std::string, int64_t> span_bytes;
  for (const trace::TraceEvent& e : tracer.Snapshot()) {
    if (std::strcmp(e.name, trace::span::kNetSend) == 0 ||
        std::strcmp(e.name, trace::span::kNetSendControl) == 0 ||
        std::strcmp(e.name, trace::span::kNetTransfer) == 0) {
      span_bytes[e.category] += e.bytes;
    }
  }
  for (int i = 0; i < 4; ++i) {
    const auto fc = static_cast<FlowClass>(i);
    EXPECT_EQ(span_bytes[FlowClassName(fc)], net.BytesMoved(fc))
        << FlowClassName(fc);
  }
  // Recv spans see the payloads, not the wire accounting.
  int64_t recv_bytes = 0;
  int recv_spans = 0;
  for (const trace::TraceEvent& e : tracer.Snapshot()) {
    if (std::strcmp(e.name, trace::span::kNetRecv) == 0) {
      recv_bytes += e.bytes;
      ++recv_spans;
    }
  }
  EXPECT_EQ(recv_spans, 6);
  EXPECT_EQ(recv_bytes, 100 + 11 + 200 + 300 + 40 + 7);
}

TEST(NetworkTest, LoopbackIsFreeAndUnthrottled) {
  NetworkConfig config;
  config.db_nic_bps = 1024;  // brutally slow
  Network net(config, 1, 1, nullptr);
  Stopwatch sw;
  net.Send(NodeId::Db(0), NodeId::Db(0), 1, Bytes(1 << 20));
  EXPECT_LT(sw.ElapsedSeconds(), 0.1);
  EXPECT_EQ(net.BytesMoved(FlowClass::kLoopback),
            static_cast<int64_t>((1 << 20) +
                                 config.per_message_overhead_bytes));
}

TEST(NetworkTest, CrossTrafficThrottledBySwitch) {
  NetworkConfig config;
  config.cross_switch_bps = 10 * 1024 * 1024;  // 10 MB/s
  Network net(config, 1, 1, nullptr);
  // Drain the burst, then time 1 MB: ~0.1 s.
  net.Send(NodeId::Db(0), NodeId::Hdfs(0), 1, Bytes(1024 * 1024));
  Stopwatch sw;
  net.Send(NodeId::Db(0), NodeId::Hdfs(0), 1, Bytes(1024 * 1024));
  EXPECT_GT(sw.ElapsedSeconds(), 0.05);
}

TEST(NetworkTest, IntraClusterAvoidsTheSwitch) {
  NetworkConfig config;
  config.cross_switch_bps = 1024;  // nearly stalled switch
  Network net(config, 2, 2, nullptr);
  Stopwatch sw;
  net.Send(NodeId::Hdfs(0), NodeId::Hdfs(1), 1, Bytes(1 << 20));
  EXPECT_LT(sw.ElapsedSeconds(), 0.2);  // unaffected by the switch
}

TEST(NetworkTest, TagBlocksAreDisjoint) {
  Network net(NetworkConfig{}, 1, 1, nullptr);
  const uint64_t a = net.AllocateTagBlock(16);
  const uint64_t b = net.AllocateTagBlock(16);
  EXPECT_GE(b, a + 16);
}

TEST(NetworkTest, SharedPayloadBroadcastDoesNotCopy) {
  Network net(NetworkConfig{}, 1, 2, nullptr);
  auto payload = std::make_shared<const std::vector<uint8_t>>(Bytes(8, 3));
  net.Send(NodeId::Db(0), NodeId::Hdfs(0), 1, payload);
  net.Send(NodeId::Db(0), NodeId::Hdfs(1), 1, payload);
  Message m0 = net.Recv(NodeId::Hdfs(0), 1).value();
  Message m1 = net.Recv(NodeId::Hdfs(1), 1).value();
  EXPECT_EQ(m0.payload.get(), m1.payload.get());  // same buffer
}

TEST(NetworkStressTest, ManySendersManyTagsDeliverExactly) {
  Network net(NetworkConfig{}, 4, 4, nullptr);
  constexpr int kMessagesPerPair = 200;
  const uint64_t tag = net.AllocateTagBlock();
  std::atomic<int64_t> payload_sum{0};
  std::vector<std::thread> threads;
  // Every node sends to every HDFS node on one shared tag.
  for (uint32_t s = 0; s < 4; ++s) {
    threads.emplace_back([&net, s, tag] {
      for (int i = 0; i < kMessagesPerPair; ++i) {
        for (uint32_t d = 0; d < 4; ++d) {
          net.Send(NodeId::Db(s), NodeId::Hdfs(d), tag,
                   std::vector<uint8_t>{static_cast<uint8_t>(i % 251)});
        }
      }
      for (uint32_t d = 0; d < 4; ++d) {
        net.SendEos(NodeId::Db(s), NodeId::Hdfs(d), tag);
      }
    });
  }
  std::atomic<int64_t> received{0};
  for (uint32_t d = 0; d < 4; ++d) {
    threads.emplace_back([&, d] {
      StreamReceiver receiver(&net, NodeId::Hdfs(d), tag, 4);
      while (auto msg = receiver.Next()) {
        payload_sum += (*msg->payload)[0];
        received++;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(received.load(), 4 * 4 * kMessagesPerPair);
  int64_t expected_sum = 0;
  for (int i = 0; i < kMessagesPerPair; ++i) expected_sum += i % 251;
  EXPECT_EQ(payload_sum.load(), expected_sum * 16);
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, DecisionsAreDeterministic) {
  const FaultProfile profile = FaultProfile::Flaky(/*seed=*/123);
  FaultInjector a(profile);
  FaultInjector b(profile);
  for (uint64_t seq = 1; seq <= 500; ++seq) {
    const FaultDecision da = a.OnSend(0b1000, /*stream_hash=*/77, seq,
                                      /*attempt=*/0, /*wire_bytes=*/1000);
    const FaultDecision db = b.OnSend(0b1000, 77, seq, 0, 1000);
    EXPECT_EQ(da.delay_us, db.delay_us);
    EXPECT_EQ(da.fail, db.fail);
    EXPECT_EQ(da.charged_bytes, db.charged_bytes);
    EXPECT_EQ(da.duplicate, db.duplicate);
  }
  EXPECT_EQ(a.failures_injected(), b.failures_injected());
  EXPECT_EQ(a.duplicates_injected(), b.duplicates_injected());
}

TEST(FaultInjectionTest, DifferentSeedsDiffer) {
  FaultInjector a(FaultProfile::Flaky(1));
  FaultInjector b(FaultProfile::Flaky(2));
  int differing = 0;
  for (uint64_t seq = 1; seq <= 200; ++seq) {
    const FaultDecision da = a.OnSend(0b1000, 77, seq, 0, 1000);
    const FaultDecision db = b.OnSend(0b1000, 77, seq, 0, 1000);
    if (da.fail != db.fail || da.duplicate != db.duplicate) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjectionTest, DuplicateDeliveredExactlyOnce) {
  FaultProfile profile;
  profile.name = "dup";
  profile.seed = 7;
  profile.duplicate_prob = 1.0;
  FaultInjector injector(profile);
  NetworkConfig config;
  config.recv_timeout_ms = 100;
  config.per_message_overhead_bytes = 0;
  Network net(config, 1, 1, nullptr);
  net.set_fault_injector(&injector);

  constexpr int kMessages = 5;
  for (int i = 0; i < kMessages; ++i) {
    ASSERT_TRUE(
        net.Send(NodeId::Db(0), NodeId::Hdfs(0), 3, Bytes(10, i)).ok());
  }
  EXPECT_EQ(injector.duplicates_injected(), kMessages);
  // Both copies hit the wire...
  EXPECT_EQ(net.BytesMoved(FlowClass::kCrossCluster), 2 * kMessages * 10);
  // ...but the receiver sees each message exactly once.
  for (int i = 0; i < kMessages; ++i) {
    auto m = net.Recv(NodeId::Hdfs(0), 3);
    ASSERT_TRUE(m.ok()) << m.status();
    EXPECT_EQ((*m->payload)[0], i);
  }
  auto extra = net.Recv(NodeId::Hdfs(0), 3);
  ASSERT_FALSE(extra.ok());
  EXPECT_TRUE(extra.status().IsTimedOut()) << extra.status();
}

TEST(FaultInjectionTest, TransientFailureRecoversWithRetry) {
  FaultProfile profile;
  profile.name = "fail_first";
  profile.seed = 11;
  profile.fail_first_prob = 1.0;
  FaultInjector injector(profile);
  Network net(NetworkConfig{}, 1, 1, nullptr);
  net.set_fault_injector(&injector);

  // A bare first attempt fails...
  const uint64_t seq = net.ReserveSeq(NodeId::Db(0), NodeId::Hdfs(0), 4);
  Status first = net.Send(NodeId::Db(0), NodeId::Hdfs(0), 4, Bytes(8), 0,
                          seq);
  EXPECT_TRUE(first.IsUnavailable()) << first;
  // ...and the second attempt of the same message succeeds.
  Status second = net.Send(NodeId::Db(0), NodeId::Hdfs(0), 4, Bytes(8), 1,
                           seq);
  EXPECT_TRUE(second.ok()) << second;
  // SendWithRetry wraps exactly that dance.
  Status with_retry =
      SendWithRetry(&net, NodeId::Db(0), NodeId::Hdfs(0), 4, Bytes(8));
  EXPECT_TRUE(with_retry.ok()) << with_retry;
  EXPECT_EQ(injector.failures_injected(), 2);
}

TEST(FaultInjectionTest, TruncatedRetryBurnsExtraBytes) {
  FaultProfile profile;
  profile.name = "truncate";
  profile.seed = 5;
  profile.truncate_prob = 1.0;
  FaultInjector injector(profile);
  NetworkConfig config;
  config.per_message_overhead_bytes = 0;
  Network net(config, 1, 1, nullptr);
  net.set_fault_injector(&injector);

  Status sent =
      SendWithRetry(&net, NodeId::Db(0), NodeId::Hdfs(0), 6, Bytes(1000));
  EXPECT_TRUE(sent.ok()) << sent;
  // The failed first attempt burned 1..999 bytes on top of the full resend.
  const int64_t moved = net.BytesMoved(FlowClass::kCrossCluster);
  EXPECT_GT(moved, 1000);
  EXPECT_LT(moved, 2000);
}

TEST(FaultInjectionTest, HardLossExhaustsRetries) {
  FaultInjector injector(FaultProfile::Lossy(/*seed=*/1));
  Network net(NetworkConfig{}, 1, 1, nullptr);
  net.set_fault_injector(&injector);
  // drop_prob = 0.2: hunt for a dropped message; its retries must all fail.
  bool saw_permanent_failure = false;
  for (int i = 0; i < 100 && !saw_permanent_failure; ++i) {
    Status s =
        SendWithRetry(&net, NodeId::Db(0), NodeId::Hdfs(0), 8, Bytes(4),
                      /*max_attempts=*/4, /*backoff_us=*/1);
    if (!s.ok()) {
      EXPECT_TRUE(s.IsUnavailable()) << s;
      saw_permanent_failure = true;
    }
  }
  EXPECT_TRUE(saw_permanent_failure);
  EXPECT_GT(injector.drops_injected(), 0);
}

TEST(FaultInjectionTest, EosAndControlAreExemptFromLoss) {
  FaultProfile profile;
  profile.name = "blackhole";
  profile.seed = 3;
  profile.drop_prob = 1.0;  // every data message is lost
  FaultInjector injector(profile);
  NetworkConfig config;
  config.recv_timeout_ms = 2000;
  Network net(config, 1, 1, nullptr);
  net.set_fault_injector(&injector);

  net.SendControl(NodeId::Db(0), NodeId::Hdfs(0), 2, Bytes(4, 9));
  net.SendEos(NodeId::Db(0), NodeId::Hdfs(0), 2);
  auto control = net.Recv(NodeId::Hdfs(0), 2);
  ASSERT_TRUE(control.ok()) << control.status();
  EXPECT_EQ((*control->payload)[0], 9);
  auto eos = net.Recv(NodeId::Hdfs(0), 2);
  ASSERT_TRUE(eos.ok()) << eos.status();
  EXPECT_TRUE(eos->eos);
}

TEST(FaultInjectionTest, RecvTimeoutReturnsTimedOut) {
  NetworkConfig config;
  config.recv_timeout_ms = 50;
  Network net(config, 1, 1, nullptr);
  Stopwatch sw;
  auto m = net.Recv(NodeId::Db(0), 1);
  ASSERT_FALSE(m.ok());
  EXPECT_TRUE(m.status().IsTimedOut()) << m.status();
  EXPECT_GE(sw.ElapsedSeconds(), 0.04);
  EXPECT_LT(sw.ElapsedSeconds(), 5.0);
}

TEST(FaultInjectionTest, StreamReceiverSurfacesTimeout) {
  NetworkConfig config;
  config.recv_timeout_ms = 50;
  Network net(config, 2, 1, nullptr);
  // Two senders expected, only one finishes: the drain must end with an
  // error rather than hang.
  net.Send(NodeId::Db(0), NodeId::Hdfs(0), 4, Bytes(1));
  net.SendEos(NodeId::Db(0), NodeId::Hdfs(0), 4);
  StreamReceiver receiver(&net, NodeId::Hdfs(0), 4, 2);
  int data = 0;
  while (receiver.Next()) ++data;
  EXPECT_EQ(data, 1);
  EXPECT_TRUE(receiver.status().IsTimedOut()) << receiver.status();
}

TEST(FaultInjectionTest, StallFiresExactlyOnce) {
  FaultProfile profile = FaultProfile::Stall(/*seed=*/0, /*num_jen_workers=*/2);
  profile.stall_us = 1000;  // keep the test fast
  FaultInjector injector(profile);
  Network net(NetworkConfig{}, 1, 2, nullptr);
  net.set_fault_injector(&injector);
  const NodeId stalled = NodeId::Hdfs(profile.stall_index);
  ASSERT_TRUE(net.Send(stalled, NodeId::Db(0), 1, Bytes(4)).ok());
  ASSERT_TRUE(net.Send(stalled, NodeId::Db(0), 1, Bytes(4)).ok());
  EXPECT_EQ(injector.stalls_injected(), 1);
}

TEST(FaultInjectionTest, ProfileByName) {
  EXPECT_TRUE(FaultProfile::ByName("none", 1, 4)->name == "none");
  EXPECT_TRUE(FaultProfile::ByName("flaky", 1, 4)->recoverable());
  EXPECT_FALSE(FaultProfile::ByName("lossy", 1, 4)->recoverable());
  EXPECT_TRUE(FaultProfile::ByName("delays", 1, 4)->enabled());
  EXPECT_TRUE(FaultProfile::ByName("stall", 9, 4)->enabled());
  EXPECT_FALSE(FaultProfile::ByName("bogus", 1, 4).ok());
}

}  // namespace
}  // namespace hybridjoin
