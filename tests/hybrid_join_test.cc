// End-to-end correctness: every join algorithm, over both HDFS formats,
// must produce exactly the rows of the single-node reference executor.

#include <gtest/gtest.h>

#include "hybrid/reference.h"
#include "hybrid/warehouse.h"
#include "workload/loader.h"

namespace hybridjoin {
namespace {

struct Cell {
  SelectivitySpec spec;
  HdfsFormat format;
  uint32_t db_workers;
  uint32_t jen_workers;
};

std::string CellName(const testing::TestParamInfo<Cell>& info) {
  const Cell& c = info.param;
  auto pct = [](double v) { return std::to_string(static_cast<int>(v * 1000)); };
  return std::string(HdfsFormatName(c.format)) + "_sT" + pct(c.spec.sigma_t) +
         "_sL" + pct(c.spec.sigma_l) + "_st" + pct(c.spec.st) + "_sl" +
         pct(c.spec.sl) + "_m" + std::to_string(c.db_workers) + "_n" +
         std::to_string(c.jen_workers);
}

class HybridJoinEndToEnd : public testing::TestWithParam<Cell> {
 protected:
  static WorkloadConfig SmallWorkload() {
    WorkloadConfig wc;
    wc.num_join_keys = 512;
    wc.t_rows = 12000;
    wc.l_rows = 50000;
    wc.num_groups = 23;
    wc.batch_rows = 8192;
    return wc;
  }
};

TEST_P(HybridJoinEndToEnd, AllAlgorithmsMatchReference) {
  const Cell& cell = GetParam();
  const WorkloadConfig wc = SmallWorkload();
  auto workload = Workload::Generate(wc, cell.spec);
  ASSERT_TRUE(workload.ok()) << workload.status();

  SimulationConfig config;
  config.db.num_workers = cell.db_workers;
  config.jen_workers = cell.jen_workers;
  config.bloom.expected_keys = wc.num_join_keys;
  HybridWarehouse hw(config);
  LoadOptions load;
  load.hdfs.format = cell.format;
  load.hdfs.rows_per_block = 4096;
  ASSERT_TRUE(LoadWorkload(&hw, *workload, load).ok());

  const HybridQuery query = workload->MakeQuery();
  auto expected = RunReferenceJoin({workload->t_rows()},
                                   workload->l_batches(), query);
  ASSERT_TRUE(expected.ok()) << expected.status();
  ASSERT_GT(expected->num_rows(), 0u) << "degenerate cell: empty result";

  for (JoinAlgorithm algorithm :
       {JoinAlgorithm::kDbSide, JoinAlgorithm::kDbSideBloom,
        JoinAlgorithm::kBroadcast, JoinAlgorithm::kRepartition,
        JoinAlgorithm::kRepartitionBloom, JoinAlgorithm::kZigzag}) {
    SCOPED_TRACE(JoinAlgorithmName(algorithm));
    auto result = hw.Execute(query, algorithm);
    ASSERT_TRUE(result.ok()) << result.status();
    const RecordBatch& rows = result->rows;
    ASSERT_EQ(rows.num_rows(), expected->num_rows());
    ASSERT_EQ(rows.num_columns(), expected->num_columns());
    for (size_t c = 0; c < rows.num_columns(); ++c) {
      for (size_t r = 0; r < rows.num_rows(); ++r) {
        ASSERT_EQ(rows.column(c).i64()[r], expected->column(c).i64()[r])
            << "mismatch at row " << r << " col " << c;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HybridJoinEndToEnd,
    testing::Values(
        Cell{{0.1, 0.1, 0.5, 0.5}, HdfsFormat::kColumnar, 3, 4},
        Cell{{0.1, 0.4, 0.2, 0.1}, HdfsFormat::kColumnar, 4, 4},
        Cell{{0.5, 0.5, 1.0, 1.0}, HdfsFormat::kColumnar, 2, 5},
        Cell{{0.01, 0.2, 0.5, 0.5}, HdfsFormat::kColumnar, 4, 3},
        Cell{{0.1, 0.1, 0.5, 0.5}, HdfsFormat::kText, 3, 4},
        Cell{{0.2, 0.4, 0.35, 0.4}, HdfsFormat::kText, 4, 4},
        // More DB workers than JEN workers (empty groups edge case).
        Cell{{0.1, 0.2, 0.5, 0.5}, HdfsFormat::kColumnar, 5, 2}),
    CellName);

// The report must carry the headline counters of Table 1.
TEST(HybridJoinReport, CountersArePopulated) {
  WorkloadConfig wc;
  wc.num_join_keys = 256;
  wc.t_rows = 4000;
  wc.l_rows = 20000;
  auto workload = Workload::Generate(wc, {0.2, 0.4, 0.5, 0.5});
  ASSERT_TRUE(workload.ok());

  SimulationConfig config;
  config.db.num_workers = 2;
  config.jen_workers = 3;
  config.bloom.expected_keys = wc.num_join_keys;
  HybridWarehouse hw(config);
  ASSERT_TRUE(LoadWorkload(&hw, *workload).ok());

  auto zigzag = hw.Execute(workload->MakeQuery(), JoinAlgorithm::kZigzag);
  ASSERT_TRUE(zigzag.ok()) << zigzag.status();
  const ExecutionReport& report = zigzag->report;
  EXPECT_GT(report.Counter(metric::kHdfsTuplesShuffled), 0);
  EXPECT_GT(report.Counter(metric::kDbTuplesSent), 0);
  EXPECT_GT(report.Counter(metric::kHdfsTuplesScanned), 0);
  EXPECT_GT(report.Counter(metric::kBloomFiltersSent), 0);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_FALSE(report.ToString().empty());

  auto repartition =
      hw.Execute(workload->MakeQuery(), JoinAlgorithm::kRepartition);
  ASSERT_TRUE(repartition.ok());
  // The zigzag's two-way pruning must move no more data than the plain
  // repartition join (Table 1's headline claim).
  EXPECT_LE(zigzag->report.Counter(metric::kHdfsTuplesShuffled),
            repartition->report.Counter(metric::kHdfsTuplesShuffled));
  EXPECT_LE(zigzag->report.Counter(metric::kDbTuplesSent),
            repartition->report.Counter(metric::kDbTuplesSent));
}

}  // namespace
}  // namespace hybridjoin
