// Unit tests for the type system: DataType, Value, Schema, ColumnVector,
// RecordBatch and the wire serde.

#include <gtest/gtest.h>

#include "types/record_batch.h"

namespace hybridjoin {
namespace {

TEST(DataTypeTest, PhysicalMapping) {
  EXPECT_EQ(PhysicalTypeOf(DataType::kDate), PhysicalType::kInt32);
  EXPECT_EQ(PhysicalTypeOf(DataType::kTime), PhysicalType::kInt32);
  EXPECT_EQ(PhysicalTypeOf(DataType::kInt64), PhysicalType::kInt64);
  EXPECT_EQ(PhysicalTypeOf(DataType::kString), PhysicalType::kString);
  EXPECT_EQ(FixedWidthOf(DataType::kInt32), 4u);
  EXPECT_EQ(FixedWidthOf(DataType::kFloat64), 8u);
  EXPECT_EQ(FixedWidthOf(DataType::kString), 0u);
}

TEST(DataTypeTest, ParseNames) {
  DataType t;
  EXPECT_TRUE(ParseDataType("int32", &t));
  EXPECT_EQ(t, DataType::kInt32);
  EXPECT_TRUE(ParseDataType("bigint", &t));
  EXPECT_EQ(t, DataType::kInt64);
  EXPECT_TRUE(ParseDataType("varchar", &t));
  EXPECT_EQ(t, DataType::kString);
  EXPECT_TRUE(ParseDataType("date", &t));
  EXPECT_EQ(t, DataType::kDate);
  EXPECT_FALSE(ParseDataType("blob", &t));
}

TEST(ValueTest, TypedAccessors) {
  Value i32(int32_t{5});
  Value i64(int64_t{5});
  Value str("abc");
  EXPECT_TRUE(i32.is_int32());
  EXPECT_TRUE(i64.is_int64());
  EXPECT_FALSE(i32.is_int64());
  EXPECT_EQ(i32.AsInt64Lenient(), 5);
  EXPECT_EQ(i64.AsInt64Lenient(), 5);
  EXPECT_EQ(str.as_string(), "abc");
  EXPECT_EQ(str.ToString(), "abc");
  EXPECT_EQ(i32.ToString(), "5");
}

TEST(SchemaTest, IndexOfAndProject) {
  auto schema = Schema::Make(
      {{"a", DataType::kInt32}, {"b", DataType::kString},
       {"c", DataType::kDate}});
  EXPECT_EQ(schema->IndexOf("b").value(), 1u);
  EXPECT_FALSE(schema->IndexOf("zz").ok());
  EXPECT_TRUE(schema->HasColumn("c"));
  auto projected = schema->Project({2, 0});
  ASSERT_EQ(projected->num_fields(), 2u);
  EXPECT_EQ(projected->field(0).name, "c");
  EXPECT_EQ(projected->field(1).name, "a");
  EXPECT_NE(schema->ToString().find("b string"), std::string::npos);
}

RecordBatch MakeBatch() {
  auto schema = Schema::Make({{"k", DataType::kInt32},
                              {"v", DataType::kInt64},
                              {"s", DataType::kString}});
  RecordBatch b(schema);
  b.AppendRow({Value(int32_t{1}), Value(int64_t{10}), Value("one")});
  b.AppendRow({Value(int32_t{2}), Value(int64_t{20}), Value("two")});
  b.AppendRow({Value(int32_t{3}), Value(int64_t{30}), Value("three")});
  return b;
}

TEST(RecordBatchTest, BasicShape) {
  RecordBatch b = MakeBatch();
  EXPECT_EQ(b.num_rows(), 3u);
  EXPECT_EQ(b.num_columns(), 3u);
  EXPECT_EQ(b.column(0).i32()[1], 2);
  EXPECT_EQ(b.column(2).str()[2], "three");
  EXPECT_GT(b.ByteSize(), 0u);
}

TEST(RecordBatchTest, GatherSelectsRows) {
  RecordBatch b = MakeBatch();
  RecordBatch g = b.Gather({2, 0});
  ASSERT_EQ(g.num_rows(), 2u);
  EXPECT_EQ(g.column(0).i32()[0], 3);
  EXPECT_EQ(g.column(0).i32()[1], 1);
  EXPECT_EQ(g.column(2).str()[0], "three");
}

TEST(RecordBatchTest, ProjectReordersColumns) {
  RecordBatch b = MakeBatch();
  RecordBatch p = b.Project({2, 0});
  ASSERT_EQ(p.num_columns(), 2u);
  EXPECT_EQ(p.schema()->field(0).name, "s");
  EXPECT_EQ(p.column(1).i32()[0], 1);
}

TEST(RecordBatchTest, AppendRowFromAnotherBatch) {
  RecordBatch src = MakeBatch();
  RecordBatch dst(src.schema());
  dst.AppendRowFrom(src, 1);
  ASSERT_EQ(dst.num_rows(), 1u);
  EXPECT_EQ(dst.column(2).str()[0], "two");
}

TEST(RecordBatchTest, SerdeRoundTrip) {
  RecordBatch b = MakeBatch();
  auto bytes = b.Serialize();
  auto decoded = RecordBatch::Deserialize(bytes, b.schema());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->num_rows(), 3u);
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(decoded->column(0).i32()[r], b.column(0).i32()[r]);
    EXPECT_EQ(decoded->column(1).i64()[r], b.column(1).i64()[r]);
    EXPECT_EQ(decoded->column(2).str()[r], b.column(2).str()[r]);
  }
}

TEST(RecordBatchTest, SerdeEmptyBatch) {
  RecordBatch b(MakeBatch().schema());
  auto decoded = RecordBatch::Deserialize(b.Serialize(), b.schema());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->num_rows(), 0u);
}

TEST(RecordBatchTest, SerdeRejectsSchemaMismatch) {
  RecordBatch b = MakeBatch();
  auto bytes = b.Serialize();
  auto wrong = Schema::Make({{"k", DataType::kInt32}});
  EXPECT_FALSE(RecordBatch::Deserialize(bytes, wrong).ok());
  auto wrong_type = Schema::Make({{"k", DataType::kString},
                                  {"v", DataType::kInt64},
                                  {"s", DataType::kString}});
  EXPECT_FALSE(RecordBatch::Deserialize(bytes, wrong_type).ok());
}

TEST(RecordBatchTest, SerdeRejectsTruncation) {
  RecordBatch b = MakeBatch();
  auto bytes = b.Serialize();
  bytes.resize(bytes.size() - 4);
  EXPECT_FALSE(RecordBatch::Deserialize(bytes, b.schema()).ok());
}

TEST(RecordBatchTest, DateAndTimeLogicalTypesSurviveSerde) {
  auto schema =
      Schema::Make({{"d", DataType::kDate}, {"t", DataType::kTime}});
  RecordBatch b(schema);
  b.AppendRow({Value(int32_t{16000}), Value(int32_t{3661})});
  auto decoded = RecordBatch::Deserialize(b.Serialize(), schema);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->column(0).type(), DataType::kDate);
  EXPECT_EQ(decoded->column(0).i32()[0], 16000);
}

TEST(RecordBatchTest, ConcatBatches) {
  RecordBatch a = MakeBatch();
  RecordBatch b = MakeBatch();
  RecordBatch all = ConcatBatches(a.schema(), {a, b});
  EXPECT_EQ(all.num_rows(), 6u);
  EXPECT_EQ(all.column(0).i32()[3], 1);
}

TEST(ColumnVectorTest, GetAndAppendValue) {
  ColumnVector c(DataType::kString);
  c.AppendValue(Value("x"));
  EXPECT_EQ(c.GetValue(0).as_string(), "x");
  ColumnVector i(DataType::kInt32);
  i.AppendValue(Value(int32_t{4}));
  EXPECT_EQ(i.GetValue(0).as_int32(), 4);
  EXPECT_EQ(i.ByteSize(), 4u);
}

}  // namespace
}  // namespace hybridjoin
