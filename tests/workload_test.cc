// Tests for the workload generator: the selectivity solver's guarantees and
// the achieved selectivities of generated data (property-style sweeps over
// the paper's parameter grid).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "expr/scalar_functions.h"
#include "workload/generator.h"

namespace hybridjoin {
namespace {

WorkloadConfig SmallConfig() {
  WorkloadConfig wc;
  wc.num_join_keys = 2048;
  wc.t_rows = 60000;
  wc.l_rows = 120000;
  return wc;
}

// Measures the actual selectivities of a generated workload.
struct Measured {
  double sigma_t;
  double sigma_l;
  double st;  // |JK(T') ∩ JK(L')| / |JK(T')|
  double sl;
};

Measured Measure(const Workload& w) {
  const HybridQuery q = w.MakeQuery();
  const RecordBatch& t = w.t_rows();
  auto t_sel = q.db.predicate->FilterAll(t);
  EXPECT_TRUE(t_sel.ok());
  std::set<int32_t> t_keys;
  for (uint32_t r : *t_sel) t_keys.insert(t.column(1).i32()[r]);

  size_t l_total = 0;
  size_t l_kept = 0;
  std::set<int32_t> l_keys;
  for (const RecordBatch& b : w.l_batches()) {
    auto sel = q.hdfs.predicate->FilterAll(b);
    EXPECT_TRUE(sel.ok());
    l_total += b.num_rows();
    l_kept += sel->size();
    for (uint32_t r : *sel) l_keys.insert(b.column(0).i32()[r]);
  }
  std::set<int32_t> both;
  for (int32_t k : t_keys) {
    if (l_keys.count(k)) both.insert(k);
  }
  Measured m;
  m.sigma_t = static_cast<double>(t_sel->size()) /
              static_cast<double>(t.num_rows());
  m.sigma_l = static_cast<double>(l_kept) / static_cast<double>(l_total);
  m.st = t_keys.empty() ? 0
                        : static_cast<double>(both.size()) /
                              static_cast<double>(t_keys.size());
  m.sl = l_keys.empty() ? 0
                        : static_cast<double>(both.size()) /
                              static_cast<double>(l_keys.size());
  return m;
}

TEST(SolverTest, ExactWhenFeasible) {
  WorkloadConfig wc = SmallConfig();
  // The Table-1 cell of the paper.
  SelectivitySpec spec{0.1, 0.4, 0.2, 0.1};
  auto solved = SolveSelectivities(spec, wc);
  ASSERT_TRUE(solved.ok()) << solved.status();
  EXPECT_LE(solved->wt, 1.0);
  EXPECT_LE(solved->wl, 1.0);
  EXPECT_LE(solved->bt, 1.0);
  EXPECT_LE(solved->bl, 1.0);
  EXPECT_NEAR(solved->wt * solved->bt, spec.sigma_t, 1e-9);
  EXPECT_NEAR(solved->wl * solved->bl, spec.sigma_l, 1e-9);
  // Windows fit in [0, 1).
  EXPECT_LE(solved->offset_l + solved->wl, 1.0 + 1e-9);
}

TEST(SolverTest, RejectsBadInput) {
  WorkloadConfig wc = SmallConfig();
  EXPECT_FALSE(SolveSelectivities({0.0, 0.1, 0.5, 0.5}, wc).ok());
  EXPECT_FALSE(SolveSelectivities({0.1, 1.5, 0.5, 0.5}, wc).ok());
  EXPECT_FALSE(SolveSelectivities({0.7, 0.7, 0.5, 0.5}, wc).ok());
}

TEST(SolverTest, InfeasibleTargetsDegradeGracefully) {
  WorkloadConfig wc = SmallConfig();
  // sigma_l = 0.4 with sl = 0.4 and st = 0.2 cannot be packed exactly
  // (see generator.h); the solver must still produce valid windows.
  auto solved = SolveSelectivities({0.1, 0.4, 0.2, 0.4}, wc);
  ASSERT_TRUE(solved.ok());
  EXPECT_LE(solved->bt, 1.0 + 1e-9);
  EXPECT_LE(solved->bl, 1.0 + 1e-9);
  EXPECT_LE(solved->wt + solved->wl - (solved->wt - solved->offset_l), 1.01);
}

struct SpecCase {
  SelectivitySpec spec;
};

class GeneratorSelectivity : public testing::TestWithParam<SpecCase> {};

TEST_P(GeneratorSelectivity, AchievedMatchesTargets) {
  const SelectivitySpec spec = GetParam().spec;
  auto w = Workload::Generate(SmallConfig(), spec);
  ASSERT_TRUE(w.ok()) << w.status();
  const Measured m = Measure(*w);
  // Tuple selectivities are tight (law of large numbers over rows).
  EXPECT_NEAR(m.sigma_t, spec.sigma_t, spec.sigma_t * 0.15 + 0.005);
  EXPECT_NEAR(m.sigma_l, spec.sigma_l, spec.sigma_l * 0.15 + 0.005);
  // Join-key selectivities are noisier (key-level sampling + indPred
  // dilution of rare keys) but must track the target.
  EXPECT_NEAR(m.st, spec.st, spec.st * 0.25 + 0.05);
  EXPECT_NEAR(m.sl, spec.sl, spec.sl * 0.25 + 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, GeneratorSelectivity,
    testing::Values(SpecCase{{0.1, 0.4, 0.2, 0.1}},   // Table 1
                    SpecCase{{0.1, 0.1, 0.5, 0.5}},
                    SpecCase{{0.1, 0.2, 0.5, 0.5}},
                    SpecCase{{0.2, 0.2, 0.1, 0.2}},
                    SpecCase{{0.1, 0.4, 0.5, 0.8}},   // Fig 9(a)
                    SpecCase{{0.1, 0.4, 0.5, 0.1}},
                    SpecCase{{0.05, 0.2, 0.5, 0.05}},
                    SpecCase{{0.01, 0.01, 1.0, 1.0}}));

// Property-based sweep: random selectivity targets (not just the paper's
// grid). Every spec the solver accepts must be *achieved* by the generated
// data, within the same statistical tolerances as the grid cases above;
// specs the solver rejects are skipped (rejection is its own contract,
// covered by SolverTest.RejectsBadInput).
TEST(GeneratorSelectivityProperty, RandomFeasibleSpecsAreAchieved) {
  // Smaller tables than SmallConfig() keep the sweep fast; tolerances below
  // account for the extra sampling noise.
  WorkloadConfig wc;
  wc.num_join_keys = 1024;
  wc.t_rows = 30000;
  wc.l_rows = 60000;

  uint64_t state = 0x9e3779b97f4a7c15ULL;
  auto next = [&state]() {
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4568bULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  auto unit = [&next]() { return (next() >> 11) * 0x1.0p-53; };

  int tested = 0;
  for (int draw = 0; draw < 40 && tested < 12; ++draw) {
    SelectivitySpec spec;
    spec.sigma_t = 0.02 + unit() * 0.55;
    spec.sigma_l = 0.02 + unit() * 0.55;
    spec.st = 0.05 + unit() * 0.95;
    spec.sl = 0.05 + unit() * 0.95;
    auto solved = SolveSelectivities(spec, wc);
    if (!solved.ok()) continue;  // infeasible: skip
    ++tested;
    wc.seed = next();

    // The solver may pack extreme targets approximately (see
    // InfeasibleTargetsDegradeGracefully); the generator's contract is to
    // realize the *solved* windows, so measure against the key-selectivity
    // targets those windows imply. For exactly-packed specs these equal
    // spec.st / spec.sl.
    const double overlap =
        std::max(0.0, std::min(solved->wt, solved->offset_l + solved->wl) -
                          solved->offset_l);
    const double st_target = solved->wt > 0 ? overlap / solved->wt : 0;
    const double sl_target = solved->wl > 0 ? overlap / solved->wl : 0;

    SCOPED_TRACE("spec={" + std::to_string(spec.sigma_t) + "," +
                 std::to_string(spec.sigma_l) + "," + std::to_string(spec.st) +
                 "," + std::to_string(spec.sl) +
                 "} seed=" + std::to_string(wc.seed));
    auto w = Workload::Generate(wc, spec);
    ASSERT_TRUE(w.ok()) << w.status();
    const Measured m = Measure(*w);
    EXPECT_NEAR(m.sigma_t, spec.sigma_t, spec.sigma_t * 0.15 + 0.01);
    EXPECT_NEAR(m.sigma_l, spec.sigma_l, spec.sigma_l * 0.15 + 0.01);
    EXPECT_NEAR(m.st, st_target, st_target * 0.3 + 0.06);
    EXPECT_NEAR(m.sl, sl_target, sl_target * 0.3 + 0.06);
  }
  // The domain above is mostly feasible; finding fewer would mean the
  // solver's feasible region shrank.
  EXPECT_GE(tested, 8);
}

TEST(GeneratorTest, SchemasMatchThePaper) {
  auto t = Workload::TSchema();
  ASSERT_EQ(t->num_fields(), 8u);
  EXPECT_EQ(t->field(0).name, "uniqKey");
  EXPECT_EQ(t->field(0).type, DataType::kInt64);
  EXPECT_EQ(t->field(4).type, DataType::kDate);
  EXPECT_EQ(t->field(7).type, DataType::kTime);
  auto l = Workload::LSchema();
  ASSERT_EQ(l->num_fields(), 6u);
  EXPECT_EQ(l->field(4).name, "groupByExtractCol");
}

TEST(GeneratorTest, RowCountsAndDeterminism) {
  WorkloadConfig wc = SmallConfig();
  wc.batch_rows = 7000;
  auto a = Workload::Generate(wc, {0.1, 0.1, 0.5, 0.5});
  auto b = Workload::Generate(wc, {0.1, 0.1, 0.5, 0.5});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->t_rows().num_rows(), wc.t_rows);
  size_t l_rows = 0;
  for (const auto& batch : a->l_batches()) {
    l_rows += batch.num_rows();
    EXPECT_LE(batch.num_rows(), wc.batch_rows);
  }
  EXPECT_EQ(l_rows, wc.l_rows);
  // Same seed, same data.
  EXPECT_EQ(a->t_rows().column(1).i32(), b->t_rows().column(1).i32());
  EXPECT_EQ(a->l_batches()[0].column(4).str(),
            b->l_batches()[0].column(4).str());
  // Different seed, different data.
  wc.seed = 99;
  auto c = Workload::Generate(wc, {0.1, 0.1, 0.5, 0.5});
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->t_rows().column(1).i32(), c->t_rows().column(1).i32());
}

TEST(GeneratorTest, QueryValidatesAndGroupValuesParse) {
  auto w = Workload::Generate(SmallConfig(), {0.1, 0.1, 0.5, 0.5});
  ASSERT_TRUE(w.ok());
  const HybridQuery q = w->MakeQuery();
  EXPECT_TRUE(q.Validate().ok()) << q.Validate();
  // groupByExtractCol values parse to group ids < num_groups.
  const auto& col = w->l_batches()[0].column(4).str();
  for (size_t r = 0; r < std::min<size_t>(col.size(), 100); ++r) {
    const int32_t g = ExtractGroup(col[r]);
    EXPECT_GE(g, 0);
    EXPECT_LT(g, static_cast<int32_t>(SmallConfig().num_groups));
  }
}

TEST(GeneratorTest, CorPredIsKeyCorrelated) {
  auto w = Workload::Generate(SmallConfig(), {0.1, 0.1, 0.5, 0.5});
  ASSERT_TRUE(w.ok());
  // Same join key -> same corPred, on both tables.
  std::map<int32_t, int32_t> t_map;
  const RecordBatch& t = w->t_rows();
  for (size_t r = 0; r < t.num_rows(); ++r) {
    const int32_t k = t.column(1).i32()[r];
    const int32_t c = t.column(2).i32()[r];
    auto [it, inserted] = t_map.insert({k, c});
    if (!inserted) {
      EXPECT_EQ(it->second, c);
    }
  }
  std::map<int32_t, int32_t> l_map;
  const RecordBatch& l = w->l_batches()[0];
  for (size_t r = 0; r < l.num_rows(); ++r) {
    const int32_t k = l.column(0).i32()[r];
    const int32_t c = l.column(1).i32()[r];
    auto [it, inserted] = l_map.insert({k, c});
    if (!inserted) {
      EXPECT_EQ(it->second, c);
    }
  }
}

// --------------------------- Zipf key skew ---------------------------

// Key-frequency histograms of both tables for one generated workload.
struct KeyCounts {
  std::map<int32_t, uint64_t> t;
  std::map<int32_t, uint64_t> l;
};

KeyCounts CountKeys(const Workload& w) {
  KeyCounts kc;
  const RecordBatch& t = w.t_rows();
  for (size_t r = 0; r < t.num_rows(); ++r) ++kc.t[t.column(1).i32()[r]];
  for (const RecordBatch& b : w.l_batches()) {
    for (size_t r = 0; r < b.num_rows(); ++r) ++kc.l[b.column(0).i32()[r]];
  }
  return kc;
}

TEST(GeneratorZipfTest, ZeroExponentStaysUniformAndBitIdentical) {
  WorkloadConfig base = SmallConfig();
  WorkloadConfig explicit_zero = SmallConfig();
  explicit_zero.zipf_s = 0.0;
  auto a = Workload::Generate(base, {0.1, 0.1, 0.5, 0.5});
  auto b = Workload::Generate(explicit_zero, {0.1, 0.1, 0.5, 0.5});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->t_rows().Serialize(), b->t_rows().Serialize());
  ASSERT_EQ(a->l_batches().size(), b->l_batches().size());
  for (size_t i = 0; i < a->l_batches().size(); ++i) {
    EXPECT_EQ(a->l_batches()[i].Serialize(), b->l_batches()[i].Serialize());
  }
  // Uniform draw: no key gets more than a few times its fair share.
  const KeyCounts kc = CountKeys(*a);
  const double fair_t = static_cast<double>(base.t_rows) /
                        static_cast<double>(base.num_join_keys);
  for (const auto& [key, count] : kc.t) {
    EXPECT_LT(static_cast<double>(count), 5.0 * fair_t) << "key " << key;
  }
}

TEST(GeneratorZipfTest, SkewMakesSameKeyHottestOnBothTables) {
  WorkloadConfig wc = SmallConfig();
  wc.zipf_s = 1.2;
  auto w = Workload::Generate(wc, {0.1, 0.1, 0.5, 0.5});
  ASSERT_TRUE(w.ok());
  const KeyCounts kc = CountKeys(*w);
  // Both tables draw ranks from the same Zipf and ranks map to key ids in
  // KeyHash order, so the same key id is the most frequent on both tables
  // and holds a macroscopic share (the rank-0 theoretical share at
  // s=1.2/2048 keys is ~19%; allow wide sampling slack).
  int32_t hottest[2] = {-1, -2};
  int side = 0;
  for (const auto* counts : {&kc.t, &kc.l}) {
    uint64_t max_count = 0;
    uint64_t total = 0;
    for (const auto& [key, count] : *counts) {
      total += count;
      if (count > max_count) {
        max_count = count;
        hottest[side] = key;
      }
    }
    EXPECT_GT(static_cast<double>(max_count),
              0.10 * static_cast<double>(total));
    ++side;
  }
  EXPECT_EQ(hottest[0], hottest[1]);
  // The tail is still populated: skew concentrates mass, it does not
  // truncate the key domain.
  EXPECT_GT(kc.l.size(), wc.num_join_keys / 4);
}

TEST(GeneratorZipfTest, HotKeysSurviveTheKeyWindowPredicates) {
  // The local predicates carve [0, w) windows in key-hash space, and the
  // Zipf ranking follows KeyHash — so the hottest ranks sit inside every
  // window and the POST-predicate stream keeps its Zipf head. This is the
  // property the skew-aware shuffle's heavy-hitter detection relies on:
  // the shuffled (filtered) stream must still be skewed.
  WorkloadConfig wc = SmallConfig();
  wc.zipf_s = 1.2;
  auto w = Workload::Generate(wc, {0.3, 0.3, 1.0, 1.0});
  ASSERT_TRUE(w.ok());
  const HybridQuery q = w->MakeQuery();
  const RecordBatch& t = w->t_rows();
  auto t_sel = q.db.predicate->FilterAll(t);
  ASSERT_TRUE(t_sel.ok());
  ASSERT_FALSE(t_sel->empty());
  std::map<int32_t, uint64_t> filtered;
  for (uint32_t r : *t_sel) ++filtered[t.column(1).i32()[r]];
  uint64_t max_count = 0;
  for (const auto& [key, count] : filtered) {
    max_count = std::max(max_count, count);
  }
  // Rank 0's share of a Zipf(1.2) prefix is >= its share of the whole
  // domain (~19% at 2048 keys); require a conservative 12% so the check is
  // robust to sampling noise yet far above the uniform fair share.
  EXPECT_GT(static_cast<double>(max_count),
            0.12 * static_cast<double>(t_sel->size()));
}

TEST(GeneratorZipfTest, SkewedGenerationIsDeterministic) {
  WorkloadConfig wc = SmallConfig();
  wc.zipf_s = 0.8;
  auto a = Workload::Generate(wc, {0.1, 0.1, 0.5, 0.5});
  auto b = Workload::Generate(wc, {0.1, 0.1, 0.5, 0.5});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->t_rows().Serialize(), b->t_rows().Serialize());
  ASSERT_EQ(a->l_batches().size(), b->l_batches().size());
  for (size_t i = 0; i < a->l_batches().size(); ++i) {
    EXPECT_EQ(a->l_batches()[i].Serialize(), b->l_batches()[i].Serialize());
  }
}

TEST(GeneratorZipfTest, RejectsBadExponent) {
  WorkloadConfig wc = SmallConfig();
  wc.zipf_s = -0.5;
  EXPECT_FALSE(Workload::Generate(wc, {0.1, 0.1, 0.5, 0.5}).ok());
}

}  // namespace
}  // namespace hybridjoin
