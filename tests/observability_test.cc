// Observability-plane unit tests: the Prometheus renderer round-trips
// through the strict validator (including under 8-way concurrent writers),
// the validator rejects malformed expositions, the event log writes
// parseable JSON lines, the time-series sampler starts/stops cleanly with
// bounded rings, the process-list registry snapshots and cancels, the
// scrape endpoint serves real HTTP, and perfcheck's overhead family gates
// against its absolute ceiling. Server-integrated behavior (KILL through a
// running join, scrape == registry across a live warehouse) lives in
// server_test.cc.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/query_scope.h"
#include "exec/memory_governor.h"
#include "obs/event_log.h"
#include "obs/json.h"
#include "obs/metrics_http.h"
#include "obs/perfcheck.h"
#include "obs/promtext.h"
#include "obs/query_registry.h"
#include "obs/timeseries.h"

namespace hybridjoin {
namespace {

// ---------------------------------------------------------------------------
// Prometheus naming and gauge classification.

TEST(PromtextTest, PrometheusNameSanitizes) {
  EXPECT_EQ(obs::PrometheusName("join.spill_bytes"), "hj_join_spill_bytes");
  EXPECT_EQ(obs::PrometheusName("server.queries_executed"),
            "hj_server_queries_executed");
  EXPECT_EQ(obs::PrometheusName("weird name-with/chars"),
            "hj_weird_name_with_chars");
}

TEST(PromtextTest, GaugeClassification) {
  EXPECT_TRUE(obs::IsGaugeMetric(metric::kServerOpenSessions));
  EXPECT_TRUE(obs::IsGaugeMetric(metric::kServerQueriesInFlight));
  EXPECT_TRUE(obs::IsGaugeMetric(metric::kShuffleHotKeys));
  EXPECT_TRUE(obs::IsGaugeMetric(metric::kJoinHtLoadFactorPct));
  EXPECT_TRUE(obs::IsGaugeMetric(metric::kJoinBuildShardRowsMax));
  EXPECT_TRUE(obs::IsGaugeMetric(metric::kBloomEstFprPpm));
  EXPECT_TRUE(obs::IsGaugeMetric(metric::kAdvisorObservedDbBytes));
  EXPECT_TRUE(obs::IsGaugeMetric("join.mem_peak_bytes"));
  // Monotonic counters stay counters.
  EXPECT_FALSE(obs::IsGaugeMetric(metric::kServerQueriesExecuted));
  EXPECT_FALSE(obs::IsGaugeMetric(metric::kJoinOutputTuples));
  EXPECT_FALSE(obs::IsGaugeMetric(metric::kServerGovernorLeakedBytes));
}

// ---------------------------------------------------------------------------
// Renderer round-trip: everything RenderPrometheus emits must pass the
// validator, with counters suffixed _total and gauges not.

TEST(PromtextTest, RenderRoundTripsThroughValidator) {
  Metrics metrics;
  metrics.Add(metric::kServerQueriesExecuted, 7);
  metrics.Add(metric::kJoinOutputTuples, 12345);
  metrics.Set(metric::kServerOpenSessions, 3);
  metrics.Max(metric::kJoinHtLoadFactorPct, 62);
  metrics.Record("jen.worker_wall_us", 1500);
  metrics.Record("jen.worker_wall_us", 250000);

  const std::string text = obs::RenderPrometheus(metrics);
  const Status valid = obs::ValidatePrometheus(text);
  EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n" << text;

  EXPECT_NE(text.find("hj_server_queries_executed_total 7"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE hj_server_open_sessions gauge"),
            std::string::npos);
  EXPECT_NE(text.find("hj_server_open_sessions 3"), std::string::npos);
  EXPECT_EQ(text.find("hj_server_open_sessions_total"), std::string::npos);
  EXPECT_NE(text.find("# TYPE hj_jen_worker_wall_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("hj_jen_worker_wall_us_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("hj_jen_worker_wall_us_count 2"), std::string::npos);
}

// The acceptance families: a registry carrying server/join/shuffle/advisor
// series renders all four under their prefixes.
TEST(PromtextTest, RenderCoversAllMetricFamilies) {
  Metrics metrics;
  metrics.Add(metric::kServerQueriesExecuted, 1);
  metrics.Add(metric::kJoinOutputTuples, 1);
  metrics.Set(metric::kShuffleHotKeys, 4);
  metrics.Max(metric::kAdvisorObservedDbBytes, 1 << 20);

  const std::string text = obs::RenderPrometheus(metrics);
  ASSERT_TRUE(obs::ValidatePrometheus(text).ok());
  for (const char* family :
       {"hj_server_", "hj_join_", "hj_shuffle_", "hj_advisor_"}) {
    EXPECT_NE(text.find(family), std::string::npos) << family;
  }
}

// ---------------------------------------------------------------------------
// Validator rejection fixtures.

TEST(PromtextTest, ValidatorRejectsMalformed) {
  // Invalid metric name (leading digit).
  EXPECT_FALSE(obs::ValidatePrometheus("# TYPE 9bad counter\n9bad 1\n").ok());
  // Sample without any TYPE declaration.
  EXPECT_FALSE(obs::ValidatePrometheus("hj_orphan 1\n").ok());
  // TYPE after its samples.
  EXPECT_FALSE(obs::ValidatePrometheus(
                   "# TYPE hj_a counter\nhj_a 1\n# TYPE hj_a counter\n")
                   .ok());
  // Unknown TYPE kind.
  EXPECT_FALSE(obs::ValidatePrometheus("# TYPE hj_a cntr\nhj_a 1\n").ok());
  // Unparseable value.
  EXPECT_FALSE(
      obs::ValidatePrometheus("# TYPE hj_a counter\nhj_a banana\n").ok());
  // Histogram buckets out of le order.
  EXPECT_FALSE(obs::ValidatePrometheus("# TYPE hj_h histogram\n"
                                       "hj_h_bucket{le=\"1\"} 1\n"
                                       "hj_h_bucket{le=\"0.5\"} 2\n"
                                       "hj_h_bucket{le=\"+Inf\"} 2\n"
                                       "hj_h_sum 1\n"
                                       "hj_h_count 2\n")
                   .ok());
  // Cumulative bucket counts decreasing.
  EXPECT_FALSE(obs::ValidatePrometheus("# TYPE hj_h histogram\n"
                                       "hj_h_bucket{le=\"0.5\"} 5\n"
                                       "hj_h_bucket{le=\"1\"} 3\n"
                                       "hj_h_bucket{le=\"+Inf\"} 5\n"
                                       "hj_h_sum 1\n"
                                       "hj_h_count 5\n")
                   .ok());
  // Missing the mandatory +Inf bucket.
  EXPECT_FALSE(obs::ValidatePrometheus("# TYPE hj_h histogram\n"
                                       "hj_h_bucket{le=\"1\"} 1\n"
                                       "hj_h_sum 1\n"
                                       "hj_h_count 1\n")
                   .ok());
  // _count disagreeing with the +Inf bucket.
  EXPECT_FALSE(obs::ValidatePrometheus("# TYPE hj_h histogram\n"
                                       "hj_h_bucket{le=\"+Inf\"} 2\n"
                                       "hj_h_sum 1\n"
                                       "hj_h_count 3\n")
                   .ok());
  // Bare sample for a declared histogram.
  EXPECT_FALSE(
      obs::ValidatePrometheus("# TYPE hj_h histogram\nhj_h 1\n").ok());

  // A well-formed document passes.
  EXPECT_TRUE(obs::ValidatePrometheus("# HELP hj_a help text\n"
                                      "# TYPE hj_a counter\n"
                                      "hj_a 42\n"
                                      "# TYPE hj_h histogram\n"
                                      "hj_h_bucket{le=\"0.5\"} 1\n"
                                      "hj_h_bucket{le=\"+Inf\"} 2\n"
                                      "hj_h_sum 0.75\n"
                                      "hj_h_count 2\n")
                  .ok());
}

// ---------------------------------------------------------------------------
// Satellite (c): scrape/registry round-trip under concurrent writers — the
// rendered value of a counter equals the registry's value once writers
// stop, and every mid-flight render validates.

TEST(PromtextTest, ConcurrentRenderMatchesRegistry) {
  Metrics metrics;
  constexpr int kWriters = 8;
  constexpr int kAddsPerWriter = 2000;
  std::atomic<bool> stop{false};
  std::atomic<int> render_failures{0};

  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string text = obs::RenderPrometheus(metrics);
      if (!obs::ValidatePrometheus(text).ok()) {
        render_failures.fetch_add(1);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < kAddsPerWriter; ++i) {
        metrics.Add(metric::kServerQueriesExecuted, 1);
        metrics.Record("jen.worker_wall_us", 100 + i);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  scraper.join();
  EXPECT_EQ(render_failures.load(), 0);

  // Quiesced: the scraped number equals the registry number exactly.
  const std::string text = obs::RenderPrometheus(metrics);
  ASSERT_TRUE(obs::ValidatePrometheus(text).ok());
  const std::string needle =
      "hj_server_queries_executed_total " +
      std::to_string(kWriters * kAddsPerWriter) + "\n";
  EXPECT_NE(text.find(needle), std::string::npos) << text;
  EXPECT_EQ(metrics.Get(metric::kServerQueriesExecuted),
            kWriters * kAddsPerWriter);
}

// ---------------------------------------------------------------------------
// Event log.

TEST(EventLogTest, WritesParseableJsonLines) {
  const std::string path = ::testing::TempDir() + "/hj_event_log_test.jsonl";
  obs::EventLog& log = obs::EventLog::Global();
  EXPECT_FALSE(log.enabled());
  ASSERT_TRUE(log.Open(path).ok());
  EXPECT_TRUE(log.enabled());

  auto fields = obs::JsonValue::Object();
  fields.Set("algorithm", obs::JsonValue::Str("zigzag"));
  fields.Set("session_id", obs::JsonValue::Int(3));
  log.Emit("start", 42, std::move(fields));
  log.Emit("finish", 42);
  log.Close();
  EXPECT_FALSE(log.enabled());
  log.Emit("dropped", 99);  // after Close: silently ignored
  EXPECT_EQ(log.lines_written(), 2u);

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::vector<obs::JsonValue> events;
  while (std::getline(in, line)) {
    auto parsed = obs::JsonValue::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    events.push_back(std::move(parsed).value());
  }
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].Find("event")->AsString(), "start");
  EXPECT_EQ(events[0].Find("query_id")->AsInt(), 42);
  EXPECT_GT(events[0].Find("ts_us")->AsInt(), 0);
  EXPECT_EQ(events[0].Find("algorithm")->AsString(), "zigzag");
  EXPECT_EQ(events[1].Find("event")->AsString(), "finish");
  std::remove(path.c_str());
}

TEST(EventLogTest, ReopenTruncates) {
  const std::string path = ::testing::TempDir() + "/hj_event_log_trunc.jsonl";
  obs::EventLog& log = obs::EventLog::Global();
  ASSERT_TRUE(log.Open(path).ok());
  log.Emit("first", 1);
  ASSERT_TRUE(log.Open(path).ok());  // reopen truncates and resets the count
  log.Emit("second", 2);
  log.Close();
  EXPECT_EQ(log.lines_written(), 1u);

  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str().find("first"), std::string::npos);
  EXPECT_NE(buf.str().find("second"), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Time-series sampler.

TEST(TimeseriesTest, SampleOnceBuildsSeriesAndRates) {
  Metrics metrics;
  obs::TimeseriesConfig config;
  obs::MetricsSampler sampler(&metrics, config);

  metrics.Add("test.counter", 10);
  sampler.SampleOnce();
  metrics.Add("test.counter", 30);
  metrics.Record("test.latency_us", 500);
  sampler.SampleOnce();

  const auto series = sampler.CounterSeries("test.counter");
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].value, 10);
  EXPECT_EQ(series[1].value, 40);
  EXPECT_GE(series[1].t_us, series[0].t_us);
  EXPECT_GE(sampler.RatePerSecond("test.counter"), 0.0);
  EXPECT_EQ(sampler.RatePerSecond("test.unknown"), 0.0);
  ASSERT_EQ(sampler.HistogramSeries("test.latency_us").size(), 1u);
  EXPECT_EQ(sampler.HistogramSeries("test.latency_us")[0].summary.count, 1u);
  EXPECT_EQ(sampler.LatestCounters().at("test.counter"), 40);
}

TEST(TimeseriesTest, RingsStayBounded) {
  Metrics metrics;
  metrics.Add("test.counter", 1);
  obs::TimeseriesConfig config;
  config.ring_capacity = 4;
  obs::MetricsSampler sampler(&metrics, config);
  for (int i = 0; i < 10; ++i) {
    metrics.Add("test.counter", 1);
    sampler.SampleOnce();
  }
  const auto series = sampler.CounterSeries("test.counter");
  ASSERT_EQ(series.size(), 4u);
  EXPECT_EQ(series.back().value, 11);  // newest retained, oldest evicted
  EXPECT_EQ(series.front().value, 8);
}

// Satellite (f): background threads start and stop cleanly, repeatedly —
// the TSan CI job runs this, so a racy join or leaked thread fails there.
TEST(TimeseriesTest, StartStopCyclesAreClean) {
  Metrics metrics;
  metrics.Add("test.counter", 1);
  obs::TimeseriesConfig config;
  config.sample_interval = std::chrono::milliseconds(1);
  for (int i = 0; i < 20; ++i) {
    obs::MetricsSampler sampler(&metrics, config);
    sampler.set_on_sample([&] { metrics.Get("test.counter"); });
    sampler.Start();
    sampler.Start();  // idempotent
    EXPECT_TRUE(sampler.running());
    if (i % 2 == 0) {
      while (sampler.samples_taken() == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    sampler.Stop();
    sampler.Stop();  // idempotent
    EXPECT_FALSE(sampler.running());
  }
}

// ---------------------------------------------------------------------------
// Query registry: registration, snapshot fields, cancel, render.

TEST(QueryRegistryTest, RegisterSnapshotCancelUnregister) {
  constexpr uint64_t kId = 0xABCDEF01;
  Metrics metrics;
  MemoryGovernor governor(1 << 20);
  ASSERT_TRUE(governor.TryReserve(4096));

  obs::QueryRegistry& registry = obs::QueryRegistry::Global();
  const size_t before = registry.size();
  {
    obs::SubmissionScope submission(7, 9, "SELECT 1");
    registry.Register(kId, &metrics, &governor, "zigzag");
  }
  registry.SetPhase(kId, "build");
  {
    // Scoped writes under the query's id feed the live row.
    QueryScope qs(kId);
    Metrics::NodeScope node(1);
    metrics.Add(metric::kDbTuplesScanned, 100);
    metrics.Add(metric::kHdfsTuplesScanned, 50);
    metrics.Add(metric::kJoinOutputTuples, 25);
  }

  const auto rows = registry.Snapshot();
  ASSERT_EQ(registry.size(), before + 1);
  const obs::LiveQuery* row = nullptr;
  for (const auto& r : rows) {
    if (r.query_id == kId) row = &r;
  }
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->session_id, 7u);
  EXPECT_EQ(row->ticket_id, 9u);
  EXPECT_EQ(row->sql, "SELECT 1");
  EXPECT_EQ(row->algorithm, "zigzag");
  EXPECT_EQ(row->phase, "build");
  EXPECT_GE(row->elapsed_seconds, 0.0);
  EXPECT_EQ(row->rows_scanned, 150);
  EXPECT_EQ(row->rows_produced, 25);
  EXPECT_EQ(row->mem_used_bytes, 4096u);
  EXPECT_EQ(row->mem_budget_bytes, 1u << 20);
  EXPECT_FALSE(row->cancel_requested);

  // The rendered process list carries the load-bearing columns.
  const std::string text = obs::RenderProcessListText(rows);
  EXPECT_NE(text.find("build"), std::string::npos);
  EXPECT_NE(text.find("SELECT 1"), std::string::npos);

  // Cancellation: visible to CheckCancelled only under the query's scope.
  EXPECT_TRUE(obs::QueryRegistry::CheckCancelled().ok());
  ASSERT_TRUE(registry.Cancel(kId).ok());
  {
    QueryScope qs(kId);
    EXPECT_TRUE(obs::QueryRegistry::IsCancelled());
    const Status st = obs::QueryRegistry::CheckCancelled();
    EXPECT_TRUE(st.IsCancelled()) << st.ToString();
  }
  EXPECT_TRUE(obs::QueryRegistry::CheckCancelled().ok());  // no scope here
  EXPECT_EQ(registry.Cancel(kId + 1).code(), StatusCode::kNotFound);

  // Unregister reports the governor's still-held bytes (leak detection).
  EXPECT_EQ(registry.Unregister(kId), 4096u);
  EXPECT_EQ(registry.size(), before);
  EXPECT_EQ(registry.Cancel(kId).code(), StatusCode::kNotFound);
  governor.Release(4096);
  metrics.ClearScoped(kId);
}

TEST(QueryRegistryTest, EmptyProcessListRenders) {
  const std::string text = obs::RenderProcessListText({});
  EXPECT_NE(text.find("no queries in flight"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Scrape endpoint.

std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(MetricsHttpTest, ServesMetricsAndRejectsOtherPaths) {
  Metrics metrics;
  metrics.Add(metric::kServerQueriesExecuted, 5);
  obs::MetricsHttpServer http(0, [&](const std::string& path,
                                     std::string* body) {
    if (path != "/metrics") return false;
    *body = obs::RenderPrometheus(metrics);
    return true;
  });
  ASSERT_TRUE(http.Start().ok());
  ASSERT_NE(http.port(), 0);

  const std::string ok_response = HttpGet(http.port(), "/metrics");
  EXPECT_NE(ok_response.find("200 OK"), std::string::npos);
  EXPECT_NE(ok_response.find("hj_server_queries_executed_total 5"),
            std::string::npos);
  const size_t body_at = ok_response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  EXPECT_TRUE(obs::ValidatePrometheus(ok_response.substr(body_at + 4)).ok());

  const std::string missing = HttpGet(http.port(), "/teapot");
  EXPECT_NE(missing.find("404"), std::string::npos);
  EXPECT_GE(http.requests_served(), 2u);
  http.Stop();
  http.Stop();  // idempotent
}

// ---------------------------------------------------------------------------
// perfcheck: the overhead family gates against an absolute ceiling, not
// against the baseline.

obs::JsonValue ParseJson(const std::string& text) {
  auto parsed = obs::JsonValue::Parse(text);
  EXPECT_TRUE(parsed.ok()) << text;
  return std::move(parsed).value();
}

TEST(PerfcheckOverheadTest, GatesAgainstAbsoluteCeiling) {
  const obs::JsonValue baseline =
      ParseJson("{\"observability\": {\"overhead_pct\": 0.4}}");
  obs::PerfcheckOptions options;  // default ceiling 2.0

  // Under the ceiling: fine even though it tripled vs baseline.
  auto result = obs::ComparePerf(
      baseline, ParseJson("{\"observability\": {\"overhead_pct\": 1.4}}"),
      options);
  EXPECT_EQ(result.leaves_compared, 1u);
  EXPECT_TRUE(result.regressions.empty());

  // Over the ceiling: flagged with the overhead family.
  result = obs::ComparePerf(
      baseline, ParseJson("{\"observability\": {\"overhead_pct\": 2.6}}"),
      options);
  ASSERT_EQ(result.regressions.size(), 1u);
  EXPECT_EQ(result.regressions[0].family, "overhead");

  // A lucky negative baseline must not tighten the gate.
  result = obs::ComparePerf(
      ParseJson("{\"observability\": {\"overhead_pct\": -0.8}}"),
      ParseJson("{\"observability\": {\"overhead_pct\": 1.9}}"), options);
  EXPECT_TRUE(result.regressions.empty());

  // The ceiling is configurable.
  options.max_overhead_pct = 1.0;
  result = obs::ComparePerf(
      baseline, ParseJson("{\"observability\": {\"overhead_pct\": 1.4}}"),
      options);
  ASSERT_EQ(result.regressions.size(), 1u);
  EXPECT_EQ(result.regressions[0].family, "overhead");
}

}  // namespace
}  // namespace hybridjoin
