// Tests for the space-saving heavy-hitter sketch behind the skew-aware
// shuffle: the frequency-bound guarantees callers rely on, merge
// associativity/exactness, wire round-trips, the PickHotKeys threshold, and
// a threads-feed-their-own-sketch race check (the deployment pattern, run
// under TSan in CI).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include "common/random.h"
#include "exec/heavy_hitters.h"

namespace hybridjoin {
namespace {

// ------------------------------ sketch bounds ------------------------------

TEST(HeavyHitterSketchTest, ExactWhenKeysFitCapacity) {
  HeavyHitterSketch sketch(16);
  for (int64_t k = 0; k < 8; ++k) {
    for (int64_t i = 0; i <= k; ++i) sketch.Add(k);
  }
  EXPECT_EQ(sketch.total(), 36u);
  EXPECT_EQ(sketch.size(), 8u);
  const auto entries = sketch.Entries();
  ASSERT_EQ(entries.size(), 8u);
  // Count-descending, every count exact, zero error.
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].key, static_cast<int64_t>(7 - i));
    EXPECT_EQ(entries[i].count, static_cast<uint64_t>(8 - i));
    EXPECT_EQ(entries[i].error, 0u);
  }
}

TEST(HeavyHitterSketchTest, TieOrderIsDeterministic) {
  HeavyHitterSketch sketch(8);
  sketch.Add(42);
  sketch.Add(7);
  sketch.Add(13);
  const auto entries = sketch.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].key, 7);
  EXPECT_EQ(entries[1].key, 13);
  EXPECT_EQ(entries[2].key, 42);
}

TEST(HeavyHitterSketchTest, BoundsHoldUnderEviction) {
  // Zipf-ish stream with many more distinct keys than capacity.
  constexpr uint32_t kCapacity = 32;
  constexpr int64_t kDistinct = 1000;
  HeavyHitterSketch sketch(kCapacity);
  std::map<int64_t, uint64_t> truth;
  Rng rng(99);
  for (int i = 0; i < 50000; ++i) {
    // Heavy head: keys 0..9 get half the stream.
    const int64_t key = rng.NextBool(0.5)
                            ? static_cast<int64_t>(rng.Uniform(10))
                            : static_cast<int64_t>(rng.Uniform(kDistinct));
    sketch.Add(key);
    ++truth[key];
  }
  const uint64_t n = sketch.total();
  EXPECT_EQ(n, 50000u);
  const uint64_t max_err = n / kCapacity;
  std::map<int64_t, HeavyHitterSketch::Entry> by_key;
  for (const auto& e : sketch.Entries()) by_key[e.key] = e;
  for (const auto& [key, entry] : by_key) {
    const uint64_t true_count = truth.count(key) ? truth[key] : 0;
    EXPECT_GE(entry.count, true_count) << "upper bound, key " << key;
    EXPECT_LE(entry.count - entry.error, true_count)
        << "lower bound, key " << key;
    EXPECT_LE(entry.error, max_err) << "error cap, key " << key;
  }
  // Every key above the N/capacity guarantee line is monitored.
  for (const auto& [key, count] : truth) {
    if (count > max_err) {
      EXPECT_TRUE(by_key.count(key)) << "missing heavy key " << key;
    }
  }
}

TEST(HeavyHitterSketchTest, WeightedAddCountsMass) {
  HeavyHitterSketch sketch(4);
  sketch.Add(1, 10);
  sketch.Add(2, 5);
  sketch.Add(1, 3);
  EXPECT_EQ(sketch.total(), 18u);
  const auto entries = sketch.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].key, 1);
  EXPECT_EQ(entries[0].count, 13u);
}

// --------------------------------- merge ---------------------------------

std::vector<HeavyHitterSketch::Entry> EntriesOf(
    const HeavyHitterSketch& sketch) {
  return sketch.Entries();
}

TEST(HeavyHitterSketchTest, MergeIsExactWhenDistinctKeysFit) {
  HeavyHitterSketch a(16);
  HeavyHitterSketch b(16);
  HeavyHitterSketch serial(16);
  for (int64_t k = 0; k < 6; ++k) {
    for (int64_t i = 0; i < 2 * k + 1; ++i) {
      a.Add(k);
      serial.Add(k);
    }
  }
  for (int64_t k = 3; k < 9; ++k) {
    for (int64_t i = 0; i < k; ++i) {
      b.Add(k);
      serial.Add(k);
    }
  }
  a.Merge(b);
  EXPECT_EQ(a.total(), serial.total());
  const auto merged = EntriesOf(a);
  const auto expect = EntriesOf(serial);
  ASSERT_EQ(merged.size(), expect.size());
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].key, expect[i].key);
    EXPECT_EQ(merged[i].count, expect[i].count);
    EXPECT_EQ(merged[i].error, expect[i].error);
  }
}

TEST(HeavyHitterSketchTest, MergeIsAssociative) {
  // Three overfull sketches; (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
  auto feed = [](uint64_t seed) {
    HeavyHitterSketch s(8);
    Rng rng(seed);
    for (int i = 0; i < 5000; ++i) {
      const int64_t key = rng.NextBool(0.4)
                              ? static_cast<int64_t>(rng.Uniform(4))
                              : static_cast<int64_t>(rng.Uniform(200));
      s.Add(key);
    }
    return s;
  };
  HeavyHitterSketch left = feed(1);
  {
    HeavyHitterSketch ab = feed(1);
    ab.Merge(feed(2));
    left = ab;
    left.Merge(feed(3));
  }
  HeavyHitterSketch right = feed(1);
  {
    HeavyHitterSketch bc = feed(2);
    bc.Merge(feed(3));
    right.Merge(bc);
  }
  EXPECT_EQ(left.total(), right.total());
  const auto le = EntriesOf(left);
  const auto re = EntriesOf(right);
  ASSERT_EQ(le.size(), re.size());
  for (size_t i = 0; i < le.size(); ++i) {
    EXPECT_EQ(le[i].key, re[i].key);
    EXPECT_EQ(le[i].count, re[i].count);
    EXPECT_EQ(le[i].error, re[i].error);
  }
}

// ---------------------- concurrent feed (TSan target) ----------------------

TEST(HeavyHitterSketchTest, PerThreadFeedThenMergeMatchesSerial) {
  // The deployment pattern: each thread owns its sketch (no sharing), the
  // coordinator merges. Run the feeds concurrently so TSan would flag any
  // accidental shared state; with capacity >= distinct keys the merged
  // result must equal the serial sketch of the concatenated stream.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  constexpr int64_t kDistinct = 64;
  std::vector<HeavyHitterSketch> locals(kThreads, HeavyHitterSketch(128));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&locals, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        locals[static_cast<size_t>(t)].Add(
            static_cast<int64_t>(rng.Uniform(kDistinct)));
      }
    });
  }
  for (auto& t : threads) t.join();

  HeavyHitterSketch merged(128);
  for (const auto& local : locals) merged.Merge(local);
  HeavyHitterSketch serial(128);
  for (int t = 0; t < kThreads; ++t) {
    Rng rng(1000 + static_cast<uint64_t>(t));
    for (int i = 0; i < kPerThread; ++i) {
      serial.Add(static_cast<int64_t>(rng.Uniform(kDistinct)));
    }
  }
  EXPECT_EQ(merged.total(), serial.total());
  const auto me = EntriesOf(merged);
  const auto se = EntriesOf(serial);
  ASSERT_EQ(me.size(), se.size());
  for (size_t i = 0; i < me.size(); ++i) {
    EXPECT_EQ(me[i].key, se[i].key);
    EXPECT_EQ(me[i].count, se[i].count);
  }
}

// ------------------------------- wire format -------------------------------

TEST(HeavyHitterSketchTest, SerializeRoundTrips) {
  HeavyHitterSketch sketch(8);
  Rng rng(5);
  for (int i = 0; i < 3000; ++i) {
    sketch.Add(static_cast<int64_t>(rng.Uniform(100)));
  }
  auto back = HeavyHitterSketch::Deserialize(sketch.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->total(), sketch.total());
  EXPECT_EQ(back->capacity(), sketch.capacity());
  const auto a = EntriesOf(sketch);
  const auto b = EntriesOf(*back);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].count, b[i].count);
    EXPECT_EQ(a[i].error, b[i].error);
  }
}

TEST(HeavyHitterSketchTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(HeavyHitterSketch::Deserialize({}).ok());
  std::vector<uint8_t> bytes = HeavyHitterSketch(4).Serialize();
  bytes.push_back(0);  // trailing garbage
  EXPECT_FALSE(HeavyHitterSketch::Deserialize(bytes).ok());
  bytes.pop_back();
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(HeavyHitterSketch::Deserialize(bytes).ok());
}

TEST(HotKeySetTest, SortsDedupsAndRoundTrips) {
  HotKeySet hot({42, 7, 42, -3});
  EXPECT_EQ(hot.size(), 3u);
  EXPECT_TRUE(hot.Contains(-3));
  EXPECT_TRUE(hot.Contains(7));
  EXPECT_TRUE(hot.Contains(42));
  EXPECT_FALSE(hot.Contains(0));
  auto back = HotKeySet::Deserialize(hot.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->keys(), hot.keys());
  // The empty set (the common uniform-workload case) round-trips too.
  auto empty = HotKeySet::Deserialize(HotKeySet().Serialize());
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

// ------------------------------- PickHotKeys -------------------------------

TEST(PickHotKeysTest, PromotesOnlySkewedKeys) {
  // Key 100 holds 40% of the stream, the rest is spread thin: with 4
  // workers its agreed-hash destination would see 0.4 + 0.6/4 = 55% of the
  // rows vs a 25% fair share.
  HeavyHitterSketch sketch(64);
  sketch.Add(100, 4000);
  for (int64_t k = 0; k < 60; ++k) sketch.Add(k, 100);
  const HotKeySet hot = PickHotKeys(sketch, /*workers=*/4,
                                    /*hot_multiplier=*/1.5,
                                    /*max_hot_keys=*/16);
  ASSERT_EQ(hot.size(), 1u);
  EXPECT_TRUE(hot.Contains(100));
}

TEST(PickHotKeysTest, UniformStreamYieldsNothing) {
  HeavyHitterSketch sketch(64);
  for (int64_t k = 0; k < 64; ++k) sketch.Add(k, 100);
  EXPECT_TRUE(PickHotKeys(sketch, 4, 1.5, 16).empty());
}

TEST(PickHotKeysTest, EdgeCasesAreEmpty) {
  HeavyHitterSketch sketch(8);
  sketch.Add(1, 1000);
  EXPECT_TRUE(PickHotKeys(sketch, /*workers=*/1, 1.5, 16).empty());
  EXPECT_TRUE(PickHotKeys(sketch, 4, 1.5, /*max_hot_keys=*/0).empty());
  HeavyHitterSketch empty(8);
  EXPECT_TRUE(PickHotKeys(empty, 4, 1.5, 16).empty());
}

TEST(PickHotKeysTest, CapKeepsLargestCounts) {
  HeavyHitterSketch sketch(64);
  sketch.Add(10, 5000);
  sketch.Add(11, 4000);
  sketch.Add(12, 3000);
  const HotKeySet hot = PickHotKeys(sketch, 8, 1.1, /*max_hot_keys=*/2);
  EXPECT_EQ(hot.size(), 2u);
  EXPECT_TRUE(hot.Contains(10));
  EXPECT_TRUE(hot.Contains(11));
  EXPECT_FALSE(hot.Contains(12));
}

TEST(PickHotKeysTest, SketchNoiseNeverPromotesAColdKey) {
  // Overfull sketch on a uniform stream: every entry's count is inflated by
  // eviction noise, but the lower bound (count - error) stays honest, so
  // nothing crosses the threshold.
  HeavyHitterSketch sketch(16);
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    sketch.Add(static_cast<int64_t>(rng.Uniform(5000)));
  }
  EXPECT_TRUE(PickHotKeys(sketch, 4, 1.5, 16).empty());
}

}  // namespace
}  // namespace hybridjoin
