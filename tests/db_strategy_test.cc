// Exercises the DB-internal join strategies of the DB-side join driver
// (the paper §4.3: "DB2 can choose whatever algorithms for the final join
// that it sees fit based on data statistics ... broadcast the database
// table / broadcast the HDFS data / a repartition-based join").

#include <gtest/gtest.h>

#include "hybrid/reference.h"
#include "hybrid/warehouse.h"
#include "workload/loader.h"

namespace hybridjoin {
namespace {

/// Runs the DB-side join and returns the strategy phase mark recorded by
/// DB worker 0 ("strategy_broadcast_db", "strategy_broadcast_hdfs",
/// "strategy_repartition").
std::string RunAndGetStrategy(HybridWarehouse* hw, const HybridQuery& query,
                              RecordBatch* rows) {
  auto result = hw->Execute(query, JoinAlgorithm::kDbSide);
  EXPECT_TRUE(result.ok()) << result.status();
  if (!result.ok()) return "";
  *rows = result->rows;
  for (const auto& [name, t] : result->report.phases) {
    if (name.rfind("strategy_", 0) == 0) return name;
  }
  return "";
}

class DbStrategyTest : public testing::Test {
 protected:
  void Load(const SelectivitySpec& spec) {
    WorkloadConfig wc;
    wc.num_join_keys = 512;
    wc.t_rows = 20000;
    wc.l_rows = 40000;
    auto workload = Workload::Generate(wc, spec);
    ASSERT_TRUE(workload.ok());
    workload_ = std::make_unique<Workload>(std::move(*workload));
    SimulationConfig config;
    config.db.num_workers = 3;
    config.jen_workers = 3;
    config.bloom.expected_keys = wc.num_join_keys;
    hw_ = std::make_unique<HybridWarehouse>(config);
    ASSERT_TRUE(LoadWorkload(hw_.get(), *workload_).ok());
  }

  void ExpectMatchesReference(const RecordBatch& rows) {
    auto expected = RunReferenceJoin({workload_->t_rows()},
                                     workload_->l_batches(),
                                     workload_->MakeQuery());
    ASSERT_TRUE(expected.ok());
    ASSERT_EQ(rows.num_rows(), expected->num_rows());
    for (size_t r = 0; r < rows.num_rows(); ++r) {
      EXPECT_EQ(rows.column(1).i64()[r], expected->column(1).i64()[r]);
    }
  }

  std::unique_ptr<Workload> workload_;
  std::unique_ptr<HybridWarehouse> hw_;
};

TEST_F(DbStrategyTest, TinyDbSideBroadcastsT) {
  // sigma_T = 0.002 -> T' is tiny; the optimizer should broadcast it.
  Load({0.002, 0.3, 1.0, 1.0});
  RecordBatch rows;
  EXPECT_EQ(RunAndGetStrategy(hw_.get(), workload_->MakeQuery(), &rows),
            "strategy_broadcast_db");
  ExpectMatchesReference(rows);
}

TEST_F(DbStrategyTest, TinyHdfsSideBroadcastsL) {
  // sigma_L = 0.002 -> the ingested L'' is tiny; broadcast it instead.
  Load({0.3, 0.002, 1.0, 1.0});
  RecordBatch rows;
  EXPECT_EQ(RunAndGetStrategy(hw_.get(), workload_->MakeQuery(), &rows),
            "strategy_broadcast_hdfs");
  ExpectMatchesReference(rows);
}

TEST_F(DbStrategyTest, ComparableSidesRepartition) {
  // Comparable wire sizes: T' is narrow (8 bytes/row) while L'' carries a
  // string, so sigma_T = 0.4 vs sigma_L = 0.05 lands both near 64 KB and
  // the repartition plan is cheapest.
  Load({0.4, 0.05, 1.0, 1.0});
  RecordBatch rows;
  EXPECT_EQ(RunAndGetStrategy(hw_.get(), workload_->MakeQuery(), &rows),
            "strategy_repartition");
  ExpectMatchesReference(rows);
}

}  // namespace
}  // namespace hybridjoin
