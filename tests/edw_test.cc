// Unit tests for the EDW substrate: partitioned tables, worker scans, the
// sorted composite index and index-only Bloom builds.

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "edw/db_cluster.h"

namespace hybridjoin {
namespace {

SchemaPtr TSchema() {
  return Schema::Make({{"uniqKey", DataType::kInt64},
                       {"joinKey", DataType::kInt32},
                       {"corPred", DataType::kInt32},
                       {"indPred", DataType::kInt32}});
}

RecordBatch MakeRows(size_t n, uint64_t seed = 1) {
  RecordBatch b(TSchema());
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    b.AppendRow({Value(static_cast<int64_t>(i)),
                 Value(static_cast<int32_t>(rng.Uniform(100))),
                 Value(static_cast<int32_t>(rng.Uniform(1000))),
                 Value(static_cast<int32_t>(rng.Uniform(1000)))});
  }
  return b;
}

class DbClusterTest : public testing::Test {
 protected:
  void SetUp() override {
    DbConfig config;
    config.num_workers = 4;
    config.batch_rows = 256;
    cluster_ = std::make_unique<DbCluster>(config);
    ASSERT_TRUE(cluster_->CreateTable({"T", TSchema(), "uniqKey"}).ok());
    rows_ = MakeRows(5000);
    ASSERT_TRUE(cluster_->LoadTable("T", rows_).ok());
  }
  std::unique_ptr<DbCluster> cluster_;
  RecordBatch rows_{TSchema()};
};

TEST_F(DbClusterTest, CatalogBasics) {
  EXPECT_EQ(cluster_->CreateTable({"T", TSchema(), "uniqKey"}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(cluster_->CreateTable({"X", TSchema(), "nope"}).ok());
  EXPECT_FALSE(cluster_->LookupTable("missing").ok());
  auto meta = cluster_->LookupTable("T");
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->distribution_column, "uniqKey");
}

TEST_F(DbClusterTest, PartitioningIsCompleteAndDisjoint) {
  EXPECT_EQ(cluster_->TableRows("T").value(), 5000u);
  std::set<int64_t> seen;
  size_t total = 0;
  for (uint32_t w = 0; w < 4; ++w) {
    auto part = cluster_->worker(w)->Partition("T");
    ASSERT_TRUE(part.ok());
    for (const RecordBatch& batch : **part) {
      total += batch.num_rows();
      for (int64_t k : batch.column(0).i64()) {
        EXPECT_TRUE(seen.insert(k).second) << "duplicate row " << k;
      }
    }
    // Partitions are reasonably balanced (hash distribution).
  }
  EXPECT_EQ(total, 5000u);
  EXPECT_EQ(seen.size(), 5000u);
}

TEST_F(DbClusterTest, PartitionsBalanced) {
  for (uint32_t w = 0; w < 4; ++w) {
    size_t rows = 0;
    for (const RecordBatch& b : **cluster_->worker(w)->Partition("T")) {
      rows += b.num_rows();
    }
    EXPECT_NEAR(static_cast<double>(rows), 1250.0, 200.0);
  }
}

TEST_F(DbClusterTest, ScanFilterProjectMatchesDirectEvaluation) {
  Metrics metrics;
  auto pred = And({Cmp("corPred", CmpOp::kLt, 300),
                   Cmp("indPred", CmpOp::kGe, 500)});
  size_t distributed = 0;
  for (uint32_t w = 0; w < 4; ++w) {
    auto out = cluster_->worker(w)->ScanFilterProject(
        "T", pred, {"joinKey", "corPred"}, &metrics);
    ASSERT_TRUE(out.ok());
    for (const RecordBatch& b : *out) {
      ASSERT_EQ(b.num_columns(), 2u);
      EXPECT_EQ(b.schema()->field(0).name, "joinKey");
      for (size_t r = 0; r < b.num_rows(); ++r) {
        EXPECT_LT(b.column(1).i32()[r], 300);
      }
      distributed += b.num_rows();
    }
  }
  auto expected = pred->FilterAll(rows_);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(distributed, expected->size());
  EXPECT_EQ(metrics.Get(metric::kDbTuplesScanned), 5000);
  EXPECT_EQ(metrics.Get(metric::kDbTuplesAfterFilter),
            static_cast<int64_t>(expected->size()));
}

TEST_F(DbClusterTest, ScanRejectsBadInput) {
  Metrics metrics;
  EXPECT_FALSE(cluster_->worker(0)
                   ->ScanFilterProject("missing", nullptr, {"joinKey"},
                                       &metrics)
                   .ok());
  EXPECT_FALSE(cluster_->worker(0)
                   ->ScanFilterProject("T", nullptr, {"missingCol"}, &metrics)
                   .ok());
}

TEST_F(DbClusterTest, BloomViaIndexMatchesBloomViaScan) {
  ASSERT_TRUE(
      cluster_->CreateIndex("T", {"corPred", "indPred", "joinKey"}).ok());
  auto pred = And({Cmp("corPred", CmpOp::kLt, 200),
                   Cmp("indPred", CmpOp::kLt, 700)});
  const BloomParams params = BloomParams::ForKeys(100);
  for (uint32_t w = 0; w < 4; ++w) {
    bool used_index = false;
    auto with_index = cluster_->worker(w)->BuildLocalBloom(
        "T", pred, "joinKey", params, &used_index);
    ASSERT_TRUE(with_index.ok());
    EXPECT_TRUE(used_index) << "covering index should be used";
  }

  // A fresh cluster without the index must produce an identical filter.
  DbConfig config;
  config.num_workers = 4;
  config.batch_rows = 256;
  DbCluster no_index(config);
  ASSERT_TRUE(no_index.CreateTable({"T", TSchema(), "uniqKey"}).ok());
  ASSERT_TRUE(no_index.LoadTable("T", rows_).ok());
  for (uint32_t w = 0; w < 4; ++w) {
    bool used_index = true;
    auto via_scan = no_index.worker(w)->BuildLocalBloom("T", pred, "joinKey",
                                                        params, &used_index);
    ASSERT_TRUE(via_scan.ok());
    EXPECT_FALSE(used_index);
    bool dummy = false;
    auto via_index = cluster_->worker(w)->BuildLocalBloom(
        "T", pred, "joinKey", params, &dummy);
    ASSERT_TRUE(via_index.ok());
    EXPECT_EQ(via_scan->FillRatio(), via_index->FillRatio());
  }
}

TEST_F(DbClusterTest, IndexNotUsedWhenNotCovering) {
  ASSERT_TRUE(cluster_->CreateIndex("T", {"corPred", "joinKey"}).ok());
  auto pred = And({Cmp("corPred", CmpOp::kLt, 200),
                   Cmp("indPred", CmpOp::kLt, 700)});  // indPred not indexed
  bool used_index = true;
  auto bloom = cluster_->worker(0)->BuildLocalBloom(
      "T", pred, "joinKey", BloomParams::ForKeys(100), &used_index);
  ASSERT_TRUE(bloom.ok());
  EXPECT_FALSE(used_index);
}

// --------------------------- DbPartitionIndex -----------------------------

TEST(DbPartitionIndexTest, RangeScanWithResiduals) {
  RecordBatch rows = MakeRows(2000, 3);
  auto index = DbPartitionIndex::Build({rows}, {"corPred", "indPred",
                                                "joinKey"});
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_entries(), 2000u);

  std::vector<ConjunctiveIntCmp> cmps = {{"corPred", CmpOp::kLt, 250},
                                         {"indPred", CmpOp::kGe, 800}};
  std::multiset<int64_t> from_index;
  ASSERT_TRUE(index
                  ->ScanValues(cmps, "joinKey",
                               [&](int64_t v) { from_index.insert(v); })
                  .ok());
  std::multiset<int64_t> expected;
  for (size_t r = 0; r < rows.num_rows(); ++r) {
    if (rows.column(2).i32()[r] < 250 && rows.column(3).i32()[r] >= 800) {
      expected.insert(rows.column(1).i32()[r]);
    }
  }
  EXPECT_EQ(from_index, expected);
  EXPECT_FALSE(expected.empty());
}

TEST(DbPartitionIndexTest, EqAndBetweenBounds) {
  RecordBatch rows = MakeRows(500, 4);
  auto index = DbPartitionIndex::Build({rows}, {"corPred", "joinKey"});
  ASSERT_TRUE(index.ok());
  // corPred == X via two bounds.
  const int32_t target = rows.column(2).i32()[0];
  std::vector<ConjunctiveIntCmp> cmps = {{"corPred", CmpOp::kGe, target},
                                         {"corPred", CmpOp::kLe, target}};
  size_t count = 0;
  ASSERT_TRUE(
      index->ScanValues(cmps, "joinKey", [&](int64_t) { ++count; }).ok());
  size_t expected = 0;
  for (int32_t v : rows.column(2).i32()) expected += (v == target);
  EXPECT_EQ(count, expected);
}

TEST(DbPartitionIndexTest, EmptyRangeIsEmpty) {
  RecordBatch rows = MakeRows(100, 5);
  auto index = DbPartitionIndex::Build({rows}, {"corPred"});
  ASSERT_TRUE(index.ok());
  size_t count = 0;
  ASSERT_TRUE(index
                  ->ScanValues({{"corPred", CmpOp::kLt, -5}}, "corPred",
                               [&](int64_t) { ++count; })
                  .ok());
  EXPECT_EQ(count, 0u);
}

TEST(DbPartitionIndexTest, RejectsNonIntegerColumns) {
  auto schema = Schema::Make({{"s", DataType::kString}});
  RecordBatch rows(schema);
  rows.AppendRow({Value("x")});
  EXPECT_FALSE(DbPartitionIndex::Build({rows}, {"s"}).ok());
  EXPECT_FALSE(DbPartitionIndex::Build({rows}, {}).ok());
}

TEST(DbPartitionIndexTest, CoversLogic) {
  RecordBatch rows = MakeRows(10, 6);
  auto index =
      DbPartitionIndex::Build({rows}, {"corPred", "indPred", "joinKey"});
  ASSERT_TRUE(index.ok());
  auto covered = And({Cmp("corPred", CmpOp::kLt, 1),
                      Cmp("indPred", CmpOp::kLt, 1)});
  EXPECT_TRUE(index->Covers(*covered, "joinKey"));
  EXPECT_FALSE(index->Covers(*covered, "uniqKey"));  // output not indexed
  auto uncovered = Cmp("uniqKey", CmpOp::kLt, 5);
  EXPECT_FALSE(index->Covers(*uncovered, "joinKey"));
  auto disjunct = Or({Cmp("corPred", CmpOp::kLt, 1),
                      Cmp("indPred", CmpOp::kLt, 1)});
  EXPECT_FALSE(index->Covers(*disjunct, "joinKey"));
}

}  // namespace
}  // namespace hybridjoin
