// Tests for the spill substrate and the Grace/hybrid hash join (the
// paper's §4.4 future work), including end-to-end equivalence with the
// all-in-memory join under forced spilling.

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/stopwatch.h"
#include "exec/grace_join.h"
#include "hybrid/warehouse.h"
#include "workload/loader.h"

namespace hybridjoin {
namespace {

// ------------------------------- SpillArea --------------------------------

RecordBatch SmallBatch(int32_t base, size_t n = 10) {
  auto schema =
      Schema::Make({{"k", DataType::kInt32}, {"s", DataType::kString}});
  RecordBatch b(schema);
  for (size_t i = 0; i < n; ++i) {
    b.AppendRow({Value(base + static_cast<int32_t>(i)),
                 Value("v" + std::to_string(base + i))});
  }
  return b;
}

TEST(SpillAreaTest, WriteReadRoundTrip) {
  Metrics metrics;
  SpillArea spill(0, 0, &metrics);
  const auto id = spill.Create();
  RecordBatch b1 = SmallBatch(0);
  RecordBatch b2 = SmallBatch(100);
  ASSERT_TRUE(spill.Append(id, b1).ok());
  ASSERT_TRUE(spill.Append(id, b2).ok());
  EXPECT_GT(spill.bytes_on_disk(), 0);

  std::vector<int32_t> keys;
  ASSERT_TRUE(spill
                  .ForEach(id, b1.schema(),
                           [&](RecordBatch&& batch) {
                             for (int32_t k : batch.column(0).i32()) {
                               keys.push_back(k);
                             }
                             return Status::OK();
                           })
                  .ok());
  ASSERT_EQ(keys.size(), 20u);
  EXPECT_EQ(keys[0], 0);
  EXPECT_EQ(keys[10], 100);
  EXPECT_GT(metrics.Get(metric::kSpillBytesWritten), 0);
  EXPECT_EQ(metrics.Get(metric::kSpillBytesWritten),
            metrics.Get(metric::kSpillBytesRead));

  spill.Drop(id);
  EXPECT_EQ(spill.bytes_on_disk(), 0);
}

TEST(SpillAreaTest, BadFileIdRejected) {
  SpillArea spill(0, 0, nullptr);
  RecordBatch b = SmallBatch(0);
  EXPECT_FALSE(spill.Append(99, b).ok());
  EXPECT_FALSE(
      spill.ForEach(99, b.schema(), [](RecordBatch&&) {
        return Status::OK();
      }).ok());
}

TEST(SpillAreaTest, ThrottledWrites) {
  SpillArea spill(512 * 1024, 0, nullptr);  // 512 KB/s writes
  const auto id = spill.Create();
  RecordBatch big = SmallBatch(0, 10000);  // ~110 KB serialized
  Stopwatch sw;
  ASSERT_TRUE(spill.Append(id, big).ok());
  ASSERT_TRUE(spill.Append(id, big).ok());
  // ~220 KB at 512 KB/s with a 64 KB burst: > 0.2 s of pacing.
  EXPECT_GT(sw.ElapsedSeconds(), 0.1);
}

// ------------------------------ GraceHashJoin -----------------------------

struct JoinInputs {
  SchemaPtr build_schema;
  SchemaPtr probe_schema;
  std::vector<RecordBatch> build;
  std::vector<RecordBatch> probe;
};

JoinInputs MakeInputs(size_t build_rows, size_t probe_rows, int32_t keys) {
  JoinInputs in;
  in.build_schema = Schema::Make(
      {{"k", DataType::kInt32}, {"grp", DataType::kInt32},
       {"pad", DataType::kString}});
  in.probe_schema =
      Schema::Make({{"k", DataType::kInt32}, {"v", DataType::kInt32}});
  Rng rng(11);
  RecordBatch b(in.build_schema);
  for (size_t i = 0; i < build_rows; ++i) {
    b.AppendRow({Value(static_cast<int32_t>(rng.Uniform(keys))),
                 Value(static_cast<int32_t>(rng.Uniform(7))),
                 Value("padding_" + std::to_string(i % 50))});
    if (b.num_rows() == 1000) {
      in.build.push_back(std::move(b));
      b = RecordBatch(in.build_schema);
    }
  }
  if (b.num_rows() > 0) in.build.push_back(std::move(b));
  RecordBatch p(in.probe_schema);
  for (size_t i = 0; i < probe_rows; ++i) {
    p.AppendRow({Value(static_cast<int32_t>(rng.Uniform(keys))),
                 Value(static_cast<int32_t>(rng.Uniform(100)))});
    if (p.num_rows() == 1000) {
      in.probe.push_back(std::move(p));
      p = RecordBatch(in.probe_schema);
    }
  }
  if (p.num_rows() > 0) in.probe.push_back(std::move(p));
  return in;
}

/// Reference: plain in-memory join + aggregation.
RecordBatch ReferenceJoin(const JoinInputs& in) {
  JoinHashTable table(0);
  for (RecordBatch batch : in.build) {
    HJ_CHECK_OK(table.AddBatch(std::move(batch)));
  }
  table.Finalize();
  auto spec = AggSpec::CountStar("B.grp", false);
  HashAggregator agg(spec);
  JoinProber prober(&table, in.build_schema, "B", in.probe_schema, "P", 0,
                    nullptr, &agg, nullptr);
  for (const RecordBatch& batch : in.probe) {
    HJ_CHECK_OK(prober.ProbeBatch(batch));
  }
  HJ_CHECK_OK(prober.Flush());
  return agg.Finish();
}

RecordBatch GraceJoinWithBudget(const JoinInputs& in, uint64_t budget,
                                uint32_t partitions, Metrics* metrics,
                                uint32_t* spilled) {
  SpillArea spill(0, 0, metrics);
  auto spec = AggSpec::CountStar("B.grp", false);
  HashAggregator agg(spec);
  GraceJoinOptions options;
  options.memory_budget_bytes = budget;
  options.num_partitions = partitions;
  GraceHashJoin join(in.build_schema, "B", 0, in.probe_schema, "P", 0,
                     nullptr, &agg, metrics, &spill, options);
  for (RecordBatch batch : in.build) {
    HJ_CHECK_OK(join.AddBuild(std::move(batch)));
  }
  HJ_CHECK_OK(join.FinishBuild());
  for (const RecordBatch& batch : in.probe) {
    HJ_CHECK_OK(join.AddProbe(batch));
  }
  HJ_CHECK_OK(join.Finish());
  if (spilled != nullptr) *spilled = join.spilled_partitions();
  return agg.Finish();
}

void ExpectEqualResults(const RecordBatch& a, const RecordBatch& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    EXPECT_EQ(a.column(0).i64()[r], b.column(0).i64()[r]);
    EXPECT_EQ(a.column(1).i64()[r], b.column(1).i64()[r]);
  }
}

TEST(GraceJoinTest, UnlimitedBudgetNeverSpills) {
  const JoinInputs in = MakeInputs(5000, 8000, 300);
  const RecordBatch expected = ReferenceJoin(in);
  Metrics metrics;
  uint32_t spilled = 99;
  const RecordBatch got =
      GraceJoinWithBudget(in, 0, 8, &metrics, &spilled);
  EXPECT_EQ(spilled, 0u);
  EXPECT_EQ(metrics.Get(metric::kSpillBytesWritten), 0);
  ExpectEqualResults(got, expected);
}

TEST(GraceJoinTest, TinyBudgetSpillsEverythingYetMatches) {
  const JoinInputs in = MakeInputs(5000, 8000, 300);
  const RecordBatch expected = ReferenceJoin(in);
  Metrics metrics;
  uint32_t spilled = 0;
  const RecordBatch got =
      GraceJoinWithBudget(in, 1024, 8, &metrics, &spilled);
  EXPECT_GT(spilled, 6u);  // nearly all partitions forced out
  EXPECT_GT(metrics.Get(metric::kSpillBytesWritten), 0);
  EXPECT_GT(metrics.Get(metric::kSpillBytesRead), 0);
  ExpectEqualResults(got, expected);
}

TEST(GraceJoinTest, MediumBudgetSpillsSomePartitions) {
  const JoinInputs in = MakeInputs(8000, 8000, 300);
  const RecordBatch expected = ReferenceJoin(in);
  uint64_t total_bytes = 0;
  for (const auto& b : in.build) total_bytes += b.ByteSize();
  Metrics metrics;
  uint32_t spilled = 0;
  const RecordBatch got = GraceJoinWithBudget(in, total_bytes / 3, 16,
                                              &metrics, &spilled);
  EXPECT_GT(spilled, 0u);
  EXPECT_LT(spilled, 16u);  // hybrid: some partitions stayed resident
  ExpectEqualResults(got, expected);
}

TEST(GraceJoinTest, SinglePartitionDegenerate) {
  const JoinInputs in = MakeInputs(2000, 3000, 50);
  const RecordBatch expected = ReferenceJoin(in);
  Metrics metrics;
  const RecordBatch got = GraceJoinWithBudget(in, 128, 1, &metrics, nullptr);
  ExpectEqualResults(got, expected);
}

TEST(GraceJoinTest, EmptyInputs) {
  JoinInputs in = MakeInputs(0, 0, 10);
  Metrics metrics;
  const RecordBatch got = GraceJoinWithBudget(in, 16, 4, &metrics, nullptr);
  EXPECT_EQ(got.num_rows(), 0u);
}

TEST(GraceJoinTest, PhaseMisuseRejected) {
  const JoinInputs in = MakeInputs(100, 100, 10);
  SpillArea spill(0, 0, nullptr);
  auto spec = AggSpec::CountStar("B.grp", false);
  HashAggregator agg(spec);
  GraceHashJoin join(in.build_schema, "B", 0, in.probe_schema, "P", 0,
                     nullptr, &agg, nullptr, &spill, GraceJoinOptions{});
  EXPECT_FALSE(join.AddProbe(in.probe[0]).ok());  // before FinishBuild
  RecordBatch b = in.build[0];
  ASSERT_TRUE(join.AddBuild(std::move(b)).ok());
  ASSERT_TRUE(join.FinishBuild().ok());
  RecordBatch b2 = in.build[0];
  EXPECT_FALSE(join.AddBuild(std::move(b2)).ok());  // after FinishBuild
  EXPECT_TRUE(join.Finish().ok());
}

// ----------------------- Seeded budget property test -----------------------

// Property: for ANY budget, the grace join's output equals the unlimited
// run's, and it spills iff the build side does not fit — spilled partitions
// (and spill bytes) are zero exactly when budget == 0 (unlimited) or
// budget >= build_bytes(). Budgets are drawn from [0, 2x build] so both
// sides of the boundary are exercised, plus the exact boundary itself.
TEST(GraceJoinTest, RandomBudgetsMatchUnlimitedAndSpillIffOverBudget) {
  const JoinInputs in = MakeInputs(6000, 9000, 250);
  const RecordBatch expected = ReferenceJoin(in);

  // Probe the exact build-side byte measure the budget is compared against
  // with one unlimited dry run. Same partition fanout as the sweep below:
  // the routed-slice accounting depends on it.
  constexpr uint32_t kPartitions = 8;
  uint64_t build_bytes = 0;
  {
    SpillArea spill(0, 0, nullptr);
    auto spec = AggSpec::CountStar("B.grp", false);
    HashAggregator agg(spec);
    GraceJoinOptions dry_options;
    dry_options.num_partitions = kPartitions;
    GraceHashJoin join(in.build_schema, "B", 0, in.probe_schema, "P", 0,
                       nullptr, &agg, nullptr, &spill, dry_options);
    for (RecordBatch batch : in.build) {
      HJ_CHECK_OK(join.AddBuild(std::move(batch)));
    }
    HJ_CHECK_OK(join.FinishBuild());
    HJ_CHECK_OK(join.Finish());
    build_bytes = join.build_bytes();
  }
  ASSERT_GT(build_bytes, 0u);

  Rng rng(20260808);
  std::vector<uint64_t> budgets = {0, build_bytes, build_bytes + 1,
                                   build_bytes - 1};
  for (int i = 0; i < 10; ++i) {
    budgets.push_back(rng.Uniform(2 * build_bytes + 1));
  }

  for (uint64_t budget : budgets) {
    Metrics metrics;
    SpillArea spill(0, 0, &metrics);
    auto spec = AggSpec::CountStar("B.grp", false);
    HashAggregator agg(spec);
    GraceJoinOptions options;
    options.memory_budget_bytes = budget;
    options.num_partitions = kPartitions;
    GraceHashJoin join(in.build_schema, "B", 0, in.probe_schema, "P", 0,
                       nullptr, &agg, &metrics, &spill, options);
    for (RecordBatch batch : in.build) {
      ASSERT_TRUE(join.AddBuild(std::move(batch)).ok()) << "budget " << budget;
    }
    ASSERT_TRUE(join.FinishBuild().ok()) << "budget " << budget;
    for (const RecordBatch& batch : in.probe) {
      ASSERT_TRUE(join.AddProbe(batch).ok()) << "budget " << budget;
    }
    ASSERT_TRUE(join.Finish().ok()) << "budget " << budget;
    EXPECT_EQ(join.build_bytes(), build_bytes) << "budget " << budget;

    const bool fits = budget == 0 || budget >= build_bytes;
    EXPECT_EQ(join.spilled_partitions() == 0, fits) << "budget " << budget;
    EXPECT_EQ(metrics.Get(metric::kSpillBytesWritten) == 0, fits)
        << "budget " << budget;

    const RecordBatch got = agg.Finish();
    SCOPED_TRACE("budget " + std::to_string(budget));
    ExpectEqualResults(got, expected);
  }
}

// ------------------------- End-to-end with spilling ------------------------

TEST(GraceJoinTest, ZigzagWithSpillBudgetMatchesUnlimited) {
  WorkloadConfig wc;
  wc.num_join_keys = 512;
  wc.t_rows = 8000;
  wc.l_rows = 40000;
  auto workload = Workload::Generate(wc, {0.3, 0.4, 0.5, 0.5});
  ASSERT_TRUE(workload.ok());

  auto run = [&](uint64_t budget, int64_t* spill_bytes) {
    SimulationConfig config;
    config.db.num_workers = 2;
    config.jen_workers = 3;
    config.bloom.expected_keys = wc.num_join_keys;
    config.jen.join_memory_budget_bytes = budget;
    config.jen.grace_partitions = 8;
    HybridWarehouse hw(config);
    HJ_CHECK_OK(LoadWorkload(&hw, *workload));
    auto result = hw.Execute(workload->MakeQuery(), JoinAlgorithm::kZigzag);
    HJ_CHECK(result.ok()) << result.status();
    if (spill_bytes != nullptr) {
      *spill_bytes = result->report.Counter(metric::kSpillBytesWritten);
    }
    return result->rows;
  };

  int64_t unlimited_spill = -1;
  const RecordBatch unlimited = run(0, &unlimited_spill);
  EXPECT_EQ(unlimited_spill, 0);

  int64_t forced_spill = 0;
  const RecordBatch spilled = run(2048, &forced_spill);
  EXPECT_GT(forced_spill, 0);

  ASSERT_EQ(spilled.num_rows(), unlimited.num_rows());
  for (size_t r = 0; r < spilled.num_rows(); ++r) {
    EXPECT_EQ(spilled.column(0).i64()[r], unlimited.column(0).i64()[r]);
    EXPECT_EQ(spilled.column(1).i64()[r], unlimited.column(1).i64()[r]);
  }
}

}  // namespace
}  // namespace hybridjoin
