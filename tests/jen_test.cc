// Unit tests for the JEN engine: locality-aware block assignment,
// connection grouping, the multi-threaded scan pipeline (predicates, Bloom
// pruning, projection pushdown, chunk skipping, remote reads), and the
// exchange helpers.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>

#include "hdfs/table_writer.h"
#include "hybrid/warehouse.h"
#include "jen/exchange.h"
#include "jen/worker.h"
#include "workload/loader.h"

namespace hybridjoin {
namespace {

constexpr uint32_t kNodes = 4;

class JenFixture : public testing::Test {
 protected:
  void SetUp() override {
    DataNodeConfig dn;
    dn.num_disks = 2;
    for (uint32_t i = 0; i < kNodes; ++i) {
      datanodes_.push_back(std::make_unique<DataNode>(i, dn));
      ptrs_.push_back(datanodes_.back().get());
    }
    namenode_ = std::make_unique<NameNode>(ptrs_, 2);
    network_ = std::make_unique<Network>(NetworkConfig{}, 2, kNodes,
                                         &metrics_);
  }

  // Writes a table of n rows: (k int32, v int32, s string).
  void WriteTable(const std::string& name, size_t n, HdfsFormat format,
                  uint32_t rows_per_block = 100) {
    auto schema = Schema::Make({{"k", DataType::kInt32},
                                {"v", DataType::kInt32},
                                {"s", DataType::kString}});
    HdfsWriteOptions options;
    options.format = format;
    options.rows_per_block = rows_per_block;
    HdfsTableWriter writer(namenode_.get(), &hcatalog_, name, schema,
                           options);
    ASSERT_TRUE(writer.Open().ok());
    RecordBatch batch(schema);
    for (size_t i = 0; i < n; ++i) {
      batch.AppendRow({Value(static_cast<int32_t>(i)),
                       Value(static_cast<int32_t>(i % 10)),
                       Value("row" + std::to_string(i))});
    }
    ASSERT_TRUE(writer.Append(batch).ok());
    ASSERT_TRUE(writer.Close().ok());
  }

  JenCoordinator MakeCoordinator(JenConfig config = {}) {
    return JenCoordinator(&hcatalog_, namenode_.get(), kNodes, config);
  }

  JenWorker MakeWorker(uint32_t index, JenConfig config = {}) {
    return JenWorker(index, ptrs_, network_.get(), &metrics_, config);
  }

  std::vector<std::unique_ptr<DataNode>> datanodes_;
  std::vector<DataNode*> ptrs_;
  std::unique_ptr<NameNode> namenode_;
  HCatalog hcatalog_;
  Metrics metrics_;
  std::unique_ptr<Network> network_;
};

// ------------------------------ Coordinator -------------------------------

TEST_F(JenFixture, PlanScanBalancedAndFullyLocal) {
  WriteTable("t", 4000, HdfsFormat::kColumnar, 100);  // 40 blocks
  auto coordinator = MakeCoordinator();
  auto plan = coordinator.PlanScan("t");
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->per_worker.size(), kNodes);
  size_t total = 0;
  for (uint32_t w = 0; w < kNodes; ++w) {
    EXPECT_EQ(plan->per_worker[w].size(), 10u);  // perfectly balanced
    total += plan->per_worker[w].size();
    for (const BlockAssignment& a : plan->per_worker[w]) {
      if (a.local) {
        EXPECT_EQ(a.replica.node, w);
      }
    }
  }
  EXPECT_EQ(total, 40u);
  // With replication 2 on 4 nodes, balanced local assignment is achievable.
  EXPECT_EQ(plan->LocalityFraction(), 1.0);
}

TEST_F(JenFixture, PlanScanWithoutLocalityCausesRemoteReads) {
  WriteTable("t", 4000, HdfsFormat::kColumnar, 100);
  JenConfig config;
  config.locality_aware = false;
  auto plan = MakeCoordinator(config).PlanScan("t");
  ASSERT_TRUE(plan.ok());
  size_t total = 0;
  for (uint32_t w = 0; w < kNodes; ++w) {
    total += plan->per_worker[w].size();
    // Hash-spread: roughly balanced, not exact.
    EXPECT_GE(plan->per_worker[w].size(), 3u);
    EXPECT_LE(plan->per_worker[w].size(), 20u);
  }
  EXPECT_EQ(total, 40u);
  // Placement-blind assignment misses replica locality for a good share
  // of blocks (with replication 2 on 4 nodes, ~half are local by chance).
  EXPECT_LT(plan->LocalityFraction(), 0.95);
}

TEST_F(JenFixture, PlanScanUnknownTableFails) {
  EXPECT_FALSE(MakeCoordinator().PlanScan("missing").ok());
}

TEST_F(JenFixture, GroupWorkersForDbCoversAllWorkers) {
  auto coordinator = MakeCoordinator();
  for (uint32_t m : {1u, 2u, 3u, 4u, 7u}) {
    auto groups = coordinator.GroupWorkersForDb(m);
    ASSERT_EQ(groups.size(), m);
    std::vector<bool> covered(kNodes, false);
    for (const auto& group : groups) {
      for (uint32_t w : group) {
        ASSERT_LT(w, kNodes);
        EXPECT_FALSE(covered[w]);
        covered[w] = true;
      }
    }
    for (bool c : covered) EXPECT_TRUE(c);
  }
}

// ------------------------------ Scan pipeline -----------------------------

TEST_F(JenFixture, ScanAppliesPredicateAndProjection) {
  WriteTable("t", 1000, HdfsFormat::kColumnar);
  auto coordinator = MakeCoordinator();
  auto plan = coordinator.PlanScan("t");
  ASSERT_TRUE(plan.ok());

  size_t rows = 0;
  for (uint32_t w = 0; w < kNodes; ++w) {
    JenWorker worker = MakeWorker(w);
    ScanTask task;
    task.meta = plan->meta;
    task.blocks = plan->per_worker[w];
    task.predicate = Cmp("v", CmpOp::kEq, 3);  // v not projected
    task.projection = {"s", "k"};
    ScanStats stats;
    ASSERT_TRUE(worker
                    .ScanBlocks(task,
                                [&](RecordBatch&& b) {
                                  EXPECT_EQ(b.num_columns(), 2u);
                                  EXPECT_EQ(b.schema()->field(0).name, "s");
                                  for (size_t r = 0; r < b.num_rows(); ++r) {
                                    EXPECT_EQ(b.column(1).i32()[r] % 10, 3);
                                  }
                                  rows += b.num_rows();
                                  return Status::OK();
                                },
                                &stats)
                    .ok());
  }
  EXPECT_EQ(rows, 100u);
}

TEST_F(JenFixture, ScanAppliesBloomFilter) {
  WriteTable("t", 1000, HdfsFormat::kColumnar);
  auto plan = MakeCoordinator().PlanScan("t");
  ASSERT_TRUE(plan.ok());
  BloomFilter bloom(BloomParams::ForKeys(100));
  for (int32_t k = 0; k < 50; ++k) bloom.Add(k);  // keys 0..49 only

  size_t rows = 0;
  int64_t dropped = 0;
  for (uint32_t w = 0; w < kNodes; ++w) {
    JenWorker worker = MakeWorker(w);
    ScanTask task;
    task.meta = plan->meta;
    task.blocks = plan->per_worker[w];
    task.projection = {"k"};
    task.bloom = &bloom;
    task.bloom_column = "k";
    ScanStats stats;
    ASSERT_TRUE(worker
                    .ScanBlocks(task,
                                [&](RecordBatch&& b) {
                                  rows += b.num_rows();
                                  return Status::OK();
                                },
                                &stats)
                    .ok());
    dropped += stats.rows_dropped_by_bloom;
  }
  // No false negatives: all 50 true keys survive; FPR keeps the rest small.
  EXPECT_GE(rows, 50u);
  EXPECT_LE(rows, 50u + 100u);
  EXPECT_GT(dropped, 800);
}

TEST_F(JenFixture, ChunkSkippingPrunesBlocksByStats) {
  // k is monotone, 100 rows per block: a predicate on a narrow k range
  // should skip most blocks entirely.
  WriteTable("t", 2000, HdfsFormat::kColumnar, 100);
  auto plan = MakeCoordinator().PlanScan("t");
  ASSERT_TRUE(plan.ok());
  size_t rows = 0;
  ScanStats total;
  for (uint32_t w = 0; w < kNodes; ++w) {
    JenWorker worker = MakeWorker(w);
    ScanTask task;
    task.meta = plan->meta;
    task.blocks = plan->per_worker[w];
    task.predicate = And({Cmp("k", CmpOp::kGe, 500),
                          Cmp("k", CmpOp::kLt, 700)});
    task.projection = {"k"};
    ScanStats stats;
    ASSERT_TRUE(worker
                    .ScanBlocks(task,
                                [&](RecordBatch&& b) {
                                  rows += b.num_rows();
                                  return Status::OK();
                                },
                                &stats)
                    .ok());
    total.blocks_read += stats.blocks_read;
    total.blocks_skipped += stats.blocks_skipped;
    total.rows_scanned += stats.rows_scanned;
  }
  EXPECT_EQ(rows, 200u);
  EXPECT_EQ(total.blocks_read, 2);    // exactly the two covering blocks
  EXPECT_EQ(total.blocks_skipped, 18);
  EXPECT_EQ(total.rows_scanned, 200);

  // With skipping disabled every block is decoded.
  JenConfig no_skip;
  no_skip.chunk_skipping = false;
  size_t rows2 = 0;
  ScanStats total2;
  for (uint32_t w = 0; w < kNodes; ++w) {
    JenWorker worker = MakeWorker(w, no_skip);
    ScanTask task;
    task.meta = plan->meta;
    task.blocks = plan->per_worker[w];
    task.predicate = And({Cmp("k", CmpOp::kGe, 500),
                          Cmp("k", CmpOp::kLt, 700)});
    task.projection = {"k"};
    ScanStats stats;
    ASSERT_TRUE(worker
                    .ScanBlocks(task,
                                [&](RecordBatch&& b) {
                                  rows2 += b.num_rows();
                                  return Status::OK();
                                },
                                &stats)
                    .ok());
    total2.blocks_skipped += stats.blocks_skipped;
    total2.rows_scanned += stats.rows_scanned;
  }
  EXPECT_EQ(rows2, 200u);
  EXPECT_EQ(total2.blocks_skipped, 0);
  EXPECT_EQ(total2.rows_scanned, 2000);
}

TEST_F(JenFixture, TextScanParsesEverything) {
  WriteTable("t", 500, HdfsFormat::kText);
  auto plan = MakeCoordinator().PlanScan("t");
  ASSERT_TRUE(plan.ok());
  size_t rows = 0;
  int64_t bytes = 0;
  for (uint32_t w = 0; w < kNodes; ++w) {
    JenWorker worker = MakeWorker(w);
    ScanTask task;
    task.meta = plan->meta;
    task.blocks = plan->per_worker[w];
    task.projection = {"k"};
    ScanStats stats;
    ASSERT_TRUE(worker
                    .ScanBlocks(task,
                                [&](RecordBatch&& b) {
                                  rows += b.num_rows();
                                  return Status::OK();
                                },
                                &stats)
                    .ok());
    bytes += stats.bytes_read;
  }
  EXPECT_EQ(rows, 500u);
  // Text reads the full file regardless of projection.
  EXPECT_EQ(bytes,
            static_cast<int64_t>(namenode_->FileSize("/warehouse/t").value()));
}

TEST_F(JenFixture, ColumnarProjectionReducesBytesRead) {
  WriteTable("t", 5000, HdfsFormat::kColumnar, 1000);
  auto plan = MakeCoordinator().PlanScan("t");
  ASSERT_TRUE(plan.ok());
  auto scan_bytes = [&](std::vector<std::string> projection) {
    int64_t bytes = 0;
    for (uint32_t w = 0; w < kNodes; ++w) {
      JenWorker worker = MakeWorker(w);
      ScanTask task;
      task.meta = plan->meta;
      task.blocks = plan->per_worker[w];
      task.projection = projection;
      ScanStats stats;
      EXPECT_TRUE(worker
                      .ScanBlocks(task,
                                  [](RecordBatch&&) { return Status::OK(); },
                                  &stats)
                      .ok());
      bytes += stats.bytes_read;
    }
    return bytes;
  };
  const int64_t narrow = scan_bytes({"v"});
  const int64_t wide = scan_bytes({"k", "v", "s"});
  EXPECT_LT(narrow * 2, wide);
}

TEST_F(JenFixture, RemoteBlocksReadThroughNetwork) {
  WriteTable("t", 1000, HdfsFormat::kColumnar, 100);
  auto plan = MakeCoordinator().PlanScan("t");
  ASSERT_TRUE(plan.ok());
  // Force worker 0 to scan everything: every non-local block is remote.
  std::vector<BlockAssignment> all;
  for (auto& per : plan->per_worker) {
    for (auto& a : per) {
      BlockAssignment copy = a;
      copy.local = copy.replica.node == 0;
      all.push_back(copy);
    }
  }
  JenWorker worker = MakeWorker(0);
  ScanTask task;
  task.meta = plan->meta;
  task.blocks = all;
  task.projection = {"k"};
  size_t rows = 0;
  ASSERT_TRUE(worker
                  .ScanBlocks(task,
                              [&](RecordBatch&& b) {
                                rows += b.num_rows();
                                return Status::OK();
                              },
                              nullptr)
                  .ok());
  EXPECT_EQ(rows, 1000u);
  EXPECT_GT(network_->BytesMoved(FlowClass::kIntraHdfs), 0);
  EXPECT_GT(metrics_.Get(metric::kHdfsBlocksRemote), 0);
}

TEST_F(JenFixture, ParallelScanMatchesSingleThreaded) {
  // ScanBlocksParallel with N process threads must observe exactly the rows
  // (and scan stats) of the single-threaded ScanBlocks — block order across
  // consumers is free, the row multiset and the counters are not.
  WriteTable("t", 3000, HdfsFormat::kColumnar, 100);
  auto plan = MakeCoordinator().PlanScan("t");
  ASSERT_TRUE(plan.ok());

  auto make_task = [&](uint32_t w) {
    ScanTask task;
    task.meta = plan->meta;
    task.blocks = plan->per_worker[w];
    task.predicate = Cmp("v", CmpOp::kLt, 7);  // keep v%10 in 0..6
    task.projection = {"k"};
    return task;
  };

  std::multiset<int32_t> serial_keys;
  ScanStats serial_stats;
  for (uint32_t w = 0; w < kNodes; ++w) {
    JenWorker worker = MakeWorker(w);
    ScanStats stats;
    ASSERT_TRUE(worker
                    .ScanBlocks(make_task(w),
                                [&](RecordBatch&& b) {
                                  for (size_t r = 0; r < b.num_rows(); ++r) {
                                    serial_keys.insert(b.column(0).i32()[r]);
                                  }
                                  return Status::OK();
                                },
                                &stats)
                    .ok());
    serial_stats.rows_scanned += stats.rows_scanned;
    serial_stats.rows_after_filter += stats.rows_after_filter;
    serial_stats.blocks_read += stats.blocks_read;
  }

  JenConfig parallel_config;
  parallel_config.process_threads = 3;
  std::multiset<int32_t> parallel_keys;
  std::mutex merge_mu;
  ScanStats parallel_stats;
  for (uint32_t w = 0; w < kNodes; ++w) {
    JenWorker worker = MakeWorker(w, parallel_config);
    ScanStats stats;
    // One consumer per process thread, each with private storage, merged
    // under a lock — the contract the drivers' per-thread sinks rely on.
    std::vector<std::multiset<int32_t>> per_thread(3);
    ASSERT_TRUE(worker
                    .ScanBlocksParallel(
                        make_task(w),
                        [&](uint32_t t) -> ScanConsumer {
                          std::multiset<int32_t>* mine = &per_thread[t];
                          return [mine](RecordBatch&& b) {
                            for (size_t r = 0; r < b.num_rows(); ++r) {
                              mine->insert(b.column(0).i32()[r]);
                            }
                            return Status::OK();
                          };
                        },
                        &stats)
                    .ok());
    std::lock_guard<std::mutex> lock(merge_mu);
    for (auto& keys : per_thread) {
      parallel_keys.insert(keys.begin(), keys.end());
    }
    parallel_stats.rows_scanned += stats.rows_scanned;
    parallel_stats.rows_after_filter += stats.rows_after_filter;
    parallel_stats.blocks_read += stats.blocks_read;
  }

  EXPECT_EQ(parallel_keys.size(), 3000u * 7 / 10);
  EXPECT_EQ(parallel_keys, serial_keys);
  EXPECT_EQ(parallel_stats.rows_scanned, serial_stats.rows_scanned);
  EXPECT_EQ(parallel_stats.rows_after_filter, serial_stats.rows_after_filter);
  EXPECT_EQ(parallel_stats.blocks_read, serial_stats.blocks_read);
}

TEST_F(JenFixture, ParallelScanConsumerErrorAborts) {
  WriteTable("t", 2000, HdfsFormat::kColumnar, 100);
  auto plan = MakeCoordinator().PlanScan("t");
  ASSERT_TRUE(plan.ok());
  std::vector<BlockAssignment> all;
  for (auto& per : plan->per_worker) {
    for (auto& a : per) all.push_back(a);
  }
  JenConfig config;
  config.process_threads = 4;
  JenWorker worker = MakeWorker(0, config);
  ScanTask task;
  task.meta = plan->meta;
  task.blocks = all;
  task.projection = {"k"};
  std::atomic<int> batches_seen{0};
  Status st = worker.ScanBlocksParallel(
      task, [&](uint32_t) -> ScanConsumer {
        return [&batches_seen](RecordBatch&&) {
          batches_seen.fetch_add(1, std::memory_order_relaxed);
          return Status::Aborted("consumer says stop");
        };
      });
  EXPECT_EQ(st.code(), StatusCode::kAborted);
  // The abort flag stops the other process threads early: nowhere near all
  // 20 blocks should have reached a consumer.
  EXPECT_GE(batches_seen.load(), 1);
}

TEST_F(JenFixture, ConsumerErrorAbortsScan) {
  WriteTable("t", 1000, HdfsFormat::kColumnar, 100);
  auto plan = MakeCoordinator().PlanScan("t");
  ASSERT_TRUE(plan.ok());
  JenWorker worker = MakeWorker(0);
  ScanTask task;
  task.meta = plan->meta;
  task.blocks = plan->per_worker[0];
  task.projection = {"k"};
  Status st = worker.ScanBlocks(task, [](RecordBatch&&) {
    return Status::Aborted("consumer says stop");
  });
  EXPECT_EQ(st.code(), StatusCode::kAborted);
}

// -------------------------------- Exchange --------------------------------

TEST_F(JenFixture, BatchSenderDeliversAndEos) {
  auto schema = Schema::Make({{"k", DataType::kInt32}});
  RecordBatch b(schema);
  for (int32_t i = 0; i < 10; ++i) b.AppendRow({Value(i)});

  const uint64_t tag = network_->AllocateTagBlock();
  BatchSender sender(network_.get(), NodeId::Hdfs(0), tag, 2, &metrics_,
                     metric::kHdfsTuplesShuffled);
  sender.Send(NodeId::Hdfs(1), b);
  sender.Send(NodeId::Hdfs(1), b);
  sender.Finish({NodeId::Hdfs(1), NodeId::Hdfs(2)});
  EXPECT_EQ(sender.tuples_sent(), 20);
  EXPECT_EQ(metrics_.Get(metric::kHdfsTuplesShuffled), 20);

  auto received = ReceiveAllBatches(network_.get(), NodeId::Hdfs(1), tag, 1,
                                    schema);
  ASSERT_TRUE(received.ok());
  ASSERT_EQ(received->size(), 2u);
  auto none = ReceiveAllBatches(network_.get(), NodeId::Hdfs(2), tag, 1,
                                schema);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST_F(JenFixture, ReceiveIntoHashTableBuilds) {
  auto schema = Schema::Make({{"k", DataType::kInt32}});
  RecordBatch b(schema);
  for (int32_t i = 0; i < 5; ++i) b.AppendRow({Value(i)});
  const uint64_t tag = network_->AllocateTagBlock();
  network_->Send(NodeId::Hdfs(1), NodeId::Hdfs(0), tag, b.Serialize());
  network_->SendEos(NodeId::Hdfs(1), NodeId::Hdfs(0), tag);
  JoinHashTable table(0);
  ASSERT_TRUE(ReceiveIntoHashTable(network_.get(), NodeId::Hdfs(0), tag, 1,
                                   schema, &table)
                  .ok());
  table.Finalize();
  EXPECT_EQ(table.num_rows(), 5u);
  EXPECT_TRUE(table.Contains(3));
}

TEST_F(JenFixture, BloomTransfer) {
  BloomFilter bloom(BloomParams::ForKeys(64));
  bloom.Add(77);
  const uint64_t tag = network_->AllocateTagBlock();
  SendBloom(network_.get(), NodeId::Db(0), NodeId::Hdfs(2), tag, bloom,
            &metrics_);
  auto received = RecvBloom(network_.get(), NodeId::Hdfs(2), tag);
  ASSERT_TRUE(received.ok());
  EXPECT_TRUE(received->MayContain(77));
  EXPECT_EQ(metrics_.Get(metric::kBloomFiltersSent), 1);
  EXPECT_GT(metrics_.Get(metric::kBloomBytesSent), 0);
}

TEST_F(JenFixture, ScanRequestSerde) {
  ScanRequest req;
  req.predicate = And({Cmp("a", CmpOp::kLt, 5), StrPrefix("s", "g1")});
  req.projection = {"a", "s"};
  BloomFilter bloom(BloomParams::ForKeys(32));
  bloom.Add(1);
  req.bloom = bloom;
  req.bloom_column = "a";
  auto decoded = ScanRequest::Deserialize(req.Serialize());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->projection, req.projection);
  EXPECT_EQ(decoded->predicate->ToString(), req.predicate->ToString());
  ASSERT_TRUE(decoded->bloom.has_value());
  EXPECT_TRUE(decoded->bloom->MayContain(1));
  EXPECT_EQ(decoded->bloom_column, "a");

  ScanRequest minimal;
  minimal.projection = {"x"};
  auto decoded2 = ScanRequest::Deserialize(minimal.Serialize());
  ASSERT_TRUE(decoded2.ok());
  EXPECT_EQ(decoded2->predicate, nullptr);
  EXPECT_FALSE(decoded2->bloom.has_value());

  EXPECT_FALSE(ScanRequest::Deserialize({0x02, 0xff}).ok());
}

TEST(JenWorkerWall, EveryWorkerFeedsWallHistogramAtEndOfQuery) {
  WorkloadConfig wc;
  wc.num_join_keys = 128;
  wc.t_rows = 2000;
  wc.l_rows = 8000;
  wc.num_groups = 5;
  wc.batch_rows = 2048;
  auto workload = Workload::Generate(wc, SelectivitySpec{});
  ASSERT_TRUE(workload.ok()) << workload.status();

  SimulationConfig config;
  config.db.num_workers = 2;
  config.jen_workers = 4;
  config.bloom.expected_keys = wc.num_join_keys;
  HybridWarehouse hw(config);
  ASSERT_TRUE(LoadWorkload(&hw, *workload, {}).ok());

  auto result = hw.Execute(workload->MakeQuery(), JoinAlgorithm::kRepartition);
  ASSERT_TRUE(result.ok()) << result.status();

  // Each of the 4 JEN worker threads records its end-of-query wall time —
  // with tracing disabled too, since NodeProfileScope records it directly.
  const auto hists = hw.context().metrics().HistogramSnapshot();
  ASSERT_EQ(hists.count(metric::kJenWorkerWallUs), 1u);
  const HistogramSummary& wall = hists.at(metric::kJenWorkerWallUs);
  EXPECT_EQ(wall.count, 4);
  EXPECT_GT(wall.max_seconds, 0.0);

  // And the assembled profile carries the same per-worker wall times.
  int jen_nodes = 0;
  for (const auto& [node, us] : result->report.profile.worker_wall_us) {
    if (node.rfind("hdfs:", 0) == 0) ++jen_nodes;
  }
  EXPECT_EQ(jen_nodes, 4);
}

}  // namespace
}  // namespace hybridjoin
