// Unit tests for predicates (evaluation, serde, introspection) and the
// scalar functions backing the paper's UDFs.

#include <gtest/gtest.h>

#include "expr/predicate.h"
#include "expr/scalar_functions.h"

namespace hybridjoin {
namespace {

RecordBatch TestBatch() {
  auto schema = Schema::Make({{"a", DataType::kInt32},
                              {"b", DataType::kInt32},
                              {"s", DataType::kString},
                              {"d1", DataType::kDate},
                              {"d2", DataType::kDate}});
  RecordBatch batch(schema);
  // a: 0..9, b: 9..0, s: gN/..., d1: 100+i, d2: 100
  for (int32_t i = 0; i < 10; ++i) {
    batch.AppendRow({Value(i), Value(int32_t{9 - i}),
                     Value("g" + std::to_string(i % 3) + "/x"),
                     Value(int32_t{100 + i}), Value(int32_t{100})});
  }
  return batch;
}

std::vector<uint32_t> Eval(const PredicatePtr& p, const RecordBatch& b) {
  auto sel = p->FilterAll(b);
  EXPECT_TRUE(sel.ok()) << sel.status();
  return sel.ok() ? *sel : std::vector<uint32_t>{};
}

TEST(PredicateTest, CmpOperators) {
  RecordBatch b = TestBatch();
  EXPECT_EQ(Eval(Cmp("a", CmpOp::kLt, 3), b).size(), 3u);
  EXPECT_EQ(Eval(Cmp("a", CmpOp::kLe, 3), b).size(), 4u);
  EXPECT_EQ(Eval(Cmp("a", CmpOp::kGt, 7), b).size(), 2u);
  EXPECT_EQ(Eval(Cmp("a", CmpOp::kGe, 7), b).size(), 3u);
  EXPECT_EQ(Eval(Cmp("a", CmpOp::kEq, 5), b).size(), 1u);
  EXPECT_EQ(Eval(Cmp("a", CmpOp::kNe, 5), b).size(), 9u);
}

TEST(PredicateTest, StringCompare) {
  RecordBatch b = TestBatch();
  EXPECT_EQ(Eval(Cmp("s", CmpOp::kEq, Value("g0/x")), b).size(), 4u);
}

TEST(PredicateTest, AndShortCircuits) {
  RecordBatch b = TestBatch();
  auto p = And({Cmp("a", CmpOp::kLt, 5), Cmp("b", CmpOp::kLt, 7)});
  // a<5 -> {0..4}; b<7 means 9-i<7 -> i>2 -> {3,4}
  auto sel = Eval(p, b);
  ASSERT_EQ(sel.size(), 2u);
  EXPECT_EQ(sel[0], 3u);
  EXPECT_EQ(sel[1], 4u);
}

TEST(PredicateTest, OrUnions) {
  RecordBatch b = TestBatch();
  auto p = Or({Cmp("a", CmpOp::kLt, 2), Cmp("a", CmpOp::kGe, 8)});
  auto sel = Eval(p, b);
  ASSERT_EQ(sel.size(), 4u);
  EXPECT_EQ(sel[0], 0u);
  EXPECT_EQ(sel[3], 9u);
}

TEST(PredicateTest, NotComplements) {
  RecordBatch b = TestBatch();
  auto p = Not(Cmp("a", CmpOp::kLt, 4));
  EXPECT_EQ(Eval(p, b).size(), 6u);
  // Double negation.
  EXPECT_EQ(Eval(Not(Not(Cmp("a", CmpOp::kLt, 4))), b).size(), 4u);
}

TEST(PredicateTest, StrPrefix) {
  RecordBatch b = TestBatch();
  EXPECT_EQ(Eval(StrPrefix("s", "g1"), b).size(), 3u);
  EXPECT_EQ(Eval(StrPrefix("s", ""), b).size(), 10u);
  EXPECT_EQ(Eval(StrPrefix("s", "nothere"), b).size(), 0u);
}

TEST(PredicateTest, DiffRangeDateArithmetic) {
  RecordBatch b = TestBatch();
  // d1 - d2 = i; keep 0 <= i <= 1.
  auto p = DiffRange("d1", "d2", 0, 1);
  auto sel = Eval(p, b);
  ASSERT_EQ(sel.size(), 2u);
  EXPECT_EQ(sel[0], 0u);
  EXPECT_EQ(sel[1], 1u);
}

TEST(PredicateTest, TrueKeepsEverything) {
  RecordBatch b = TestBatch();
  EXPECT_EQ(Eval(True(), b).size(), 10u);
}

TEST(PredicateTest, UnknownColumnIsError) {
  RecordBatch b = TestBatch();
  auto sel = Cmp("zz", CmpOp::kEq, 1)->FilterAll(b);
  EXPECT_FALSE(sel.ok());
}

TEST(PredicateTest, TypeMismatchIsError) {
  RecordBatch b = TestBatch();
  EXPECT_FALSE(Cmp("a", CmpOp::kEq, Value("str"))->FilterAll(b).ok());
  EXPECT_FALSE(Cmp("s", CmpOp::kEq, 1)->FilterAll(b).ok());
  EXPECT_FALSE(StrPrefix("a", "x")->FilterAll(b).ok());
  EXPECT_FALSE(DiffRange("s", "d1", 0, 1)->FilterAll(b).ok());
}

TEST(PredicateTest, SerdeRoundTripPreservesSemantics) {
  RecordBatch b = TestBatch();
  const std::vector<PredicatePtr> preds = {
      True(),
      Cmp("a", CmpOp::kLe, 4),
      Cmp("s", CmpOp::kEq, Value("g0/x")),
      StrPrefix("s", "g2"),
      DiffRange("d1", "d2", -1, 1),
      And({Cmp("a", CmpOp::kGt, 1), Or({Cmp("b", CmpOp::kLt, 3),
                                        Not(Cmp("a", CmpOp::kEq, 5))})}),
  };
  for (const auto& p : preds) {
    SCOPED_TRACE(p->ToString());
    auto decoded = Predicate::Deserialize(p->Serialize());
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(Eval(*decoded, b), Eval(p, b));
    EXPECT_EQ((*decoded)->ToString(), p->ToString());
  }
}

TEST(PredicateTest, DeserializeRejectsGarbage) {
  std::vector<uint8_t> garbage = {0x99, 0x01, 0x02};
  EXPECT_FALSE(Predicate::Deserialize(garbage).ok());
  EXPECT_FALSE(Predicate::Deserialize(std::vector<uint8_t>{}).ok());
}

TEST(PredicateTest, CollectColumns) {
  auto p = And({Cmp("a", CmpOp::kLt, 1), DiffRange("d1", "d2", 0, 1),
                Not(StrPrefix("s", "g"))});
  std::vector<std::string> cols;
  p->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::vector<std::string>{"a", "d1", "d2", "s"}));
}

TEST(PredicateTest, ConjunctiveIntCmpExtraction) {
  auto p = And({Cmp("a", CmpOp::kLt, 5), Cmp("b", CmpOp::kGe, 2)});
  std::vector<ConjunctiveIntCmp> cmps;
  p->CollectConjunctiveIntCmps(&cmps);
  ASSERT_EQ(cmps.size(), 2u);
  EXPECT_EQ(cmps[0].column, "a");
  EXPECT_TRUE(p->IsConjunctiveIntCmps());

  // OR children are not conjuncts.
  auto q = Or({Cmp("a", CmpOp::kLt, 5), Cmp("b", CmpOp::kGe, 2)});
  cmps.clear();
  q->CollectConjunctiveIntCmps(&cmps);
  EXPECT_TRUE(cmps.empty());
  EXPECT_FALSE(q->IsConjunctiveIntCmps());

  // A string comparison breaks index coverage.
  auto r = And({Cmp("a", CmpOp::kLt, 5), Cmp("s", CmpOp::kEq, Value("x"))});
  EXPECT_FALSE(r->IsConjunctiveIntCmps());
}

// ----------------------------- Scalar funcs -------------------------------

TEST(ScalarFunctionsTest, ExtractGroup) {
  EXPECT_EQ(ExtractGroup("g123/products/item"), 123);
  EXPECT_EQ(ExtractGroup("g0/x"), 0);
  EXPECT_EQ(ExtractGroup("g42"), 42);
  // Non-conforming values hash deterministically and non-negatively.
  EXPECT_EQ(ExtractGroup("whatever"), ExtractGroup("whatever"));
  EXPECT_GE(ExtractGroup("whatever"), 0);
  EXPECT_GE(ExtractGroup(""), 0);
  EXPECT_GE(ExtractGroup("g12x"), 0);  // digits not followed by '/'
  EXPECT_NE(ExtractGroup("g12x"), 12);
}

TEST(ScalarFunctionsTest, UrlPrefix) {
  EXPECT_EQ(UrlPrefix("http://shop.example.com/cameras/canon?x=1"),
            "shop.example.com/cameras");
  EXPECT_EQ(UrlPrefix("shop.example.com/cameras"), "shop.example.com/cameras");
  EXPECT_EQ(UrlPrefix("example.com"), "example.com");
  EXPECT_EQ(UrlPrefix("https://example.com"), "example.com");
}

TEST(ScalarFunctionsTest, RegionOfIpIsTotalAndStable) {
  EXPECT_EQ(RegionOfIp("10.1.2.3"), RegionOfIp("10.9.9.9"));
  const std::string regions[] = {"East Coast", "West Coast", "Midwest",
                                 "South"};
  bool found = false;
  for (const auto& r : regions) found |= (RegionOfIp("200.0.0.1") == r);
  EXPECT_TRUE(found);
}

TEST(ScalarFunctionsTest, DateCivilRoundTrip) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  EXPECT_EQ(DaysFromCivil(1970, 1, 2), 1);
  EXPECT_EQ(DaysFromCivil(2000, 3, 1), DaysFromCivil(2000, 2, 29) + 1);
  for (int32_t days : {0, 1, 365, 10957, 16000, 20000, 50000}) {
    int y, m, d;
    CivilFromDays(days, &y, &m, &d);
    EXPECT_EQ(DaysFromCivil(y, m, d), days);
  }
}

}  // namespace
}  // namespace hybridjoin
