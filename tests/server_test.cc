// WarehouseServer tests: session lifecycle, the admission gate
// (queue-then-shed, FIFO grant), per-session rate limiting, memory quotas,
// and — the load-bearing part — N concurrent queries through one warehouse
// all matching the single-node reference oracle with per-query isolated
// profiles (concurrent EXPLAIN ANALYZE must not cross-contaminate).
// The whole suite runs under the TSan CI job, so the catalog RW locks and
// the query-scoped metric store are exercised under a race detector.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "hybrid/reference.h"
#include "obs/event_log.h"
#include "obs/json.h"
#include "obs/promtext.h"
#include "server/warehouse_server.h"
#include "testing/differential.h"
#include "workload/loader.h"

namespace hybridjoin {
namespace {

using server::AdmissionController;
using server::QueryQuotas;
using server::ServerConfig;
using server::ServerResult;
using server::ServerStats;
using server::WarehouseServer;

const char kQuery[] =
    "SELECT extract_group(L.groupByExtractCol), COUNT(*) "
    "FROM T, L "
    "WHERE T.corPred < 200000 AND L.corPred < 400000 "
    "  AND T.joinKey = L.joinKey "
    "  AND T.predAfterJoin - L.predAfterJoin BETWEEN 0 AND 1 "
    "GROUP BY extract_group(L.groupByExtractCol)";

/// Small but non-trivial warehouse shared by the concurrency tests.
class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WorkloadConfig wc;
    wc.num_join_keys = 512;
    wc.t_rows = 8 * 1024;
    wc.l_rows = 32 * 1024;
    InitWarehouse(wc);
  }

  void InitWarehouse(const WorkloadConfig& wc) {
    auto workload = Workload::Generate(wc, {0.1, 0.1, 0.5, 0.5});
    ASSERT_TRUE(workload.ok()) << workload.status().ToString();
    workload_ = std::make_unique<Workload>(std::move(workload).value());

    SimulationConfig config;
    config.db.num_workers = 2;
    config.jen_workers = 2;
    config.bloom.expected_keys = wc.num_join_keys;
    hw_ = std::make_unique<HybridWarehouse>(config);
    ASSERT_TRUE(LoadWorkload(hw_.get(), *workload_).ok());

    // The oracle must run the same query the server will parse from
    // kQuery (its literals differ from the workload's solved ones).
    auto query = hw_->ParseSql(kQuery);
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    auto oracle = RunReferenceJoin({workload_->t_rows()},
                                   workload_->l_batches(), *query);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    oracle_ = std::make_unique<RecordBatch>(std::move(oracle).value());
  }

  std::unique_ptr<Workload> workload_;
  std::unique_ptr<HybridWarehouse> hw_;
  std::unique_ptr<RecordBatch> oracle_;
};

TEST_F(ServerTest, SessionLifecycle) {
  WarehouseServer server(hw_.get(), ServerConfig{});
  const uint64_t s1 = server.OpenSession();
  const uint64_t s2 = server.OpenSession();
  EXPECT_NE(s1, s2);
  EXPECT_EQ(server.stats().open_sessions, 2u);

  // Unknown / closed sessions fail kNotFound.
  EXPECT_EQ(server.Execute(999999, kQuery).status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(server.CloseSession(s2).ok());
  EXPECT_EQ(server.Execute(s2, kQuery).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(server.CloseSession(s2).code(), StatusCode::kNotFound);

  // A live session executes and gets a populated ticket.
  auto result = server.Execute(s1, kQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->ticket.ticket_id, 0u);
  EXPECT_GT(result->ticket.query_id, 0u);
  EXPECT_EQ(result->ticket.session_id, s1);
  EXPECT_FALSE(result->ticket.queued);

  // After Shutdown everything is kUnavailable; the destructor is idempotent.
  server.Shutdown();
  EXPECT_EQ(server.Execute(s1, kQuery).status().code(),
            StatusCode::kUnavailable);
}

// The acceptance bullet: N concurrent queries through one warehouse, every
// result equal to the reference oracle, every ticket carrying a distinct
// query id, and every profile isolated — its data counters identical to a
// solo run's, unaffected by the neighbors executing at the same time.
TEST_F(ServerTest, ConcurrentQueriesMatchReferenceWithIsolatedProfiles) {
  ServerConfig sc;
  sc.admission.max_concurrent_queries = 4;
  sc.admission.max_queued = 32;
  sc.admission.queue_timeout = std::chrono::milliseconds(60000);
  WarehouseServer server(hw_.get(), sc);

  // Solo run: the baseline for the per-query data counters. These are pure
  // functions of (data, query, algorithm) — unlike wall-time counters —
  // so a concurrent run whose scoped slices got polluted by a neighbor
  // would show inflated totals.
  const uint64_t baseline_session = server.OpenSession();
  auto solo = server.Execute(baseline_session, kQuery);
  ASSERT_TRUE(solo.ok()) << solo.status().ToString();
  const obs::QueryProfile& solo_profile = solo->result.report.profile;
  ASSERT_FALSE(solo_profile.empty());
  const std::vector<std::pair<std::string, std::string>> kDataCounters = {
      {"scan", "jen.tuples_scanned"},
      {"scan", "edw.tuples_scanned"},
      {"build", "join.ht_rows"},
  };
  std::vector<std::pair<std::pair<std::string, std::string>, int64_t>>
      baseline;
  for (const auto& [phase, name] : kDataCounters) {
    if (const auto* row = solo_profile.FindCounter(phase, name)) {
      baseline.emplace_back(std::make_pair(phase, name), row->total);
    }
  }
  ASSERT_FALSE(baseline.empty());

  constexpr int kClients = 8;
  std::vector<Result<ServerResult>> results(
      kClients, Result<ServerResult>(Status::Internal("not run")));
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      const uint64_t session = server.OpenSession();
      results[c] = server.Execute(session, kQuery);
      (void)server.CloseSession(session);
    });
  }
  for (auto& t : threads) t.join();

  std::set<uint64_t> query_ids{solo->ticket.query_id};
  for (int c = 0; c < kClients; ++c) {
    ASSERT_TRUE(results[c].ok())
        << "client " << c << ": " << results[c].status().ToString();
    const ServerResult& r = results[c].value();

    // Correctness: byte-for-byte equal to the single-node oracle.
    auto diff = testing_support::CompareBatches(*oracle_, r.result.rows);
    EXPECT_FALSE(diff.has_value()) << "client " << c << ": " << *diff;

    // Distinct query ids, ticket consistent with the assembled profile.
    EXPECT_GT(r.ticket.query_id, 0u);
    EXPECT_TRUE(query_ids.insert(r.ticket.query_id).second)
        << "duplicate query id " << r.ticket.query_id;
    EXPECT_EQ(r.result.report.profile.query_id, r.ticket.query_id);

    // Profile isolation: each concurrent profile reports exactly the solo
    // totals for the deterministic data counters.
    for (const auto& [key, solo_total] : baseline) {
      const auto* row =
          r.result.report.profile.FindCounter(key.first, key.second);
      ASSERT_NE(row, nullptr)
          << "client " << c << " lost " << key.first << "/" << key.second;
      EXPECT_EQ(row->total, solo_total)
          << "client " << c << " profile contaminated at " << key.first
          << "/" << key.second;
    }
  }

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.executed, kClients + 1);
  EXPECT_EQ(stats.admission.shed, 0);
  EXPECT_EQ(stats.admission.running, 0u);
}

// DDL through the HybridWarehouse facade (EDW catalog writers + HCatalog
// registration) interleaved with live queries: the catalog RW locks must
// let both proceed without a data race (TSan job) or a wrong answer.
TEST_F(ServerTest, ConcurrentDdlAndQueries) {
  ServerConfig sc;
  sc.admission.max_concurrent_queries = 4;
  sc.admission.queue_timeout = std::chrono::milliseconds(60000);
  WarehouseServer server(hw_.get(), sc);

  std::atomic<bool> ddl_ok{true};
  std::thread ddl([&] {
    SchemaPtr schema =
        Schema::Make({{"k", DataType::kInt32}, {"v", DataType::kInt64}});
    RecordBatch rows(schema);
    for (int32_t i = 0; i < 256; ++i) {
      rows.AppendRow({Value(i), Value(int64_t{i} * 7)});
    }
    for (int i = 0; i < 6; ++i) {
      const std::string name = "ddl_side_" + std::to_string(i);
      if (!hw_->CreateDbTable({name, schema, "k"}).ok() ||
          !hw_->LoadDbTable(name, rows).ok() ||
          !hw_->CreateDbIndex(name, {"k", "v"}).ok() ||
          !hw_->WriteHdfsTable("ddl_hdfs_" + std::to_string(i), schema,
                               HdfsWriteOptions{}, {rows})
               .ok()) {
        ddl_ok.store(false);
      }
    }
  });

  constexpr int kClients = 3;
  constexpr int kQueriesEach = 2;
  std::atomic<int> query_failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      const uint64_t session = server.OpenSession();
      for (int q = 0; q < kQueriesEach; ++q) {
        auto result = server.Execute(session, kQuery);
        if (!result.ok() ||
            testing_support::CompareBatches(*oracle_, result->result.rows)
                .has_value()) {
          query_failures.fetch_add(1);
        }
      }
      (void)server.CloseSession(session);
    });
  }
  ddl.join();
  for (auto& t : threads) t.join();

  EXPECT_TRUE(ddl_ok.load());
  EXPECT_EQ(query_failures.load(), 0);
  // The DDL really landed while queries were flowing.
  EXPECT_TRUE(hw_->context().db().LookupTable("ddl_side_5").ok());
  EXPECT_TRUE(hw_->context().hcatalog().Lookup("ddl_hdfs_5").ok());
}

// Queries past the admission limit queue; past the deadline they shed with
// kResourceExhausted — deterministically, by pinning the only slot from the
// test instead of racing against query runtimes.
TEST_F(ServerTest, AdmissionQueuesThenSheds) {
  ServerConfig sc;
  sc.admission.max_concurrent_queries = 1;
  sc.admission.max_queued = 2;
  sc.admission.queue_timeout = std::chrono::milliseconds(50);
  WarehouseServer server(hw_.get(), sc);
  const uint64_t session = server.OpenSession();

  {
    // Pin the only execution slot.
    auto pinned = server.admission().Admit();
    ASSERT_TRUE(pinned.ok());

    constexpr int kBlocked = 3;
    std::vector<StatusCode> codes(kBlocked, StatusCode::kOk);
    std::vector<std::thread> threads;
    for (int i = 0; i < kBlocked; ++i) {
      threads.emplace_back([&, i] {
        codes[i] = server.Execute(session, kQuery).status().code();
      });
    }
    for (auto& t : threads) t.join();
    for (int i = 0; i < kBlocked; ++i) {
      EXPECT_EQ(codes[i], StatusCode::kResourceExhausted) << "waiter " << i;
    }
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.admission.shed, kBlocked);
    EXPECT_EQ(stats.executed, 0);
  }  // pinned slot released

  // With the slot free again, the same session executes normally.
  auto result = server.Execute(session, kQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(server.stats().admission.shed, 3);
}

// A queued query whose turn comes before the deadline is admitted (not
// shed) and its ticket records the queue wait.
TEST_F(ServerTest, QueuedQueryIsGrantedWhenSlotFrees) {
  ServerConfig sc;
  sc.admission.max_concurrent_queries = 1;
  sc.admission.max_queued = 4;
  sc.admission.queue_timeout = std::chrono::milliseconds(60000);
  WarehouseServer server(hw_.get(), sc);
  const uint64_t session = server.OpenSession();

  auto pinned = server.admission().Admit();
  ASSERT_TRUE(pinned.ok());

  std::thread waiter_thread([&] {
    auto result = server.Execute(session, kQuery);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->ticket.queued);
    EXPECT_GT(result->ticket.queue_wait_us, 0);
  });

  // Give the waiter time to enter the queue, then free the slot.
  while (server.stats().admission.queued_now == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  pinned.value().Release();
  waiter_thread.join();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.admission.admitted_queued, 1);
  EXPECT_EQ(stats.admission.shed, 0);
}

TEST_F(ServerTest, SessionRateLimitSheds) {
  // The shed assertion below is only meaningful while the bucket is still
  // empty, i.e. the first query must finish well inside the 1-second refill
  // period. A deliberately tiny warehouse keeps it there even on a loaded
  // CI machine; if the machine is too slow anyway, skip rather than flake.
  WorkloadConfig tiny;
  tiny.num_join_keys = 128;
  tiny.t_rows = 512;
  tiny.l_rows = 2048;
  InitWarehouse(tiny);

  ServerConfig sc;
  sc.session_queries_per_second = 1;  // refill far slower than the test
  sc.session_burst_queries = 1;
  sc.rate_limit_wait = std::chrono::milliseconds(0);
  WarehouseServer server(hw_.get(), sc);
  const uint64_t session = server.OpenSession();

  // First query spends the burst token; the immediate second one sheds.
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(server.Execute(session, kQuery).ok());
  if (std::chrono::steady_clock::now() - t0 >=
      std::chrono::milliseconds(800)) {
    GTEST_SKIP() << "machine too loaded for the 1s token-refill window";
  }
  auto second = server.Execute(session, kQuery);
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(server.stats().rate_limited, 1);

  // The limit is per session: a fresh session has its own bucket.
  const uint64_t other = server.OpenSession();
  EXPECT_TRUE(server.Execute(other, kQuery).ok());
}

TEST_F(ServerTest, MemoryQuotaRejectsBeforeAdmission) {
  WarehouseServer server(hw_.get(), ServerConfig{});
  const uint64_t session = server.OpenSession();

  QueryQuotas tight;
  tight.memory_bytes = 1;  // no build side fits in one byte
  auto rejected = server.Execute(session, kQuery, tight);
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.quota_rejected, 1);
  EXPECT_EQ(stats.admission.admitted, 0);  // never reached the gate

  QueryQuotas roomy;
  roomy.memory_bytes = 1ull << 40;
  EXPECT_TRUE(server.Execute(session, kQuery, roomy).ok());
}

/// A warehouse whose working set genuinely exceeds the minimum admissible
/// quota, so a 64 KiB-class budget puts the governor under real pressure.
class PressuredServerTest : public ServerTest {
 protected:
  void SetUp() override {
    WorkloadConfig wc;
    wc.num_join_keys = 2048;
    wc.t_rows = 64 * 1024;
    wc.l_rows = 64 * 1024;
    InitWarehouse(wc);
  }
};

// A query admitted with a quota below its working set completes by
// spilling (never an error), still matches the oracle, and its EXPLAIN
// ANALYZE profile shows the spill traffic under the canonical names.
TEST_F(PressuredServerTest, SmallMemoryQuotaCompletesViaSpilling) {
  WarehouseServer server(hw_.get(), ServerConfig{});
  const uint64_t session = server.OpenSession();

  QueryQuotas tight;
  tight.memory_bytes = 96 * 1024;  // >= kMinQuotaBytes, < the working set
  ASSERT_GE(tight.memory_bytes, WarehouseServer::kMinQuotaBytes);
  auto result = server.Execute(session, kQuery, tight);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto diff = testing_support::CompareBatches(*oracle_, result->result.rows);
  EXPECT_FALSE(diff.has_value()) << *diff;

  const obs::QueryProfile& profile = result->result.report.profile;
  const auto* spilled = profile.FindCounter("spill", "join.spill_bytes");
  ASSERT_NE(spilled, nullptr) << profile.ToText();
  EXPECT_GT(spilled->total, 0);
  EXPECT_EQ(server.stats().quota_rejected, 0);
}

// The governor holds the query to its quota: the profile's peak-memory
// gauge never exceeds the admitted budget (spilling, not overcommit, is
// how the working set fits).
TEST_F(PressuredServerTest, MemPeakStaysWithinQuota) {
  WarehouseServer server(hw_.get(), ServerConfig{});
  const uint64_t session = server.OpenSession();

  QueryQuotas quota;
  quota.memory_bytes = 256 * 1024;
  auto result = server.Execute(session, kQuery, quota);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto diff = testing_support::CompareBatches(*oracle_, result->result.rows);
  EXPECT_FALSE(diff.has_value()) << *diff;

  const obs::QueryProfile& profile = result->result.report.profile;
  const auto* peak = profile.FindCounter("driver", "join.mem_peak_bytes");
  ASSERT_NE(peak, nullptr) << profile.ToText();
  EXPECT_GT(peak->total, 0);
  EXPECT_LE(peak->total, static_cast<int64_t>(quota.memory_bytes));
}

// ---------------------------------------------------------------------------
// Observability plane through the server.

/// A throttled warehouse (paper-testbed I/O simulation, cold cache) whose
/// queries run long enough to observe — and kill — mid-flight.
class SlowServerTest : public ServerTest {
 protected:
  void SetUp() override {
    WorkloadConfig wc;
    wc.num_join_keys = 1024;
    wc.t_rows = 16 * 1024;
    wc.l_rows = 64 * 1024;
    auto workload = Workload::Generate(wc, {0.1, 0.1, 0.5, 0.5});
    ASSERT_TRUE(workload.ok()) << workload.status().ToString();
    workload_ = std::make_unique<Workload>(std::move(workload).value());

    SimulationConfig config = SimulationConfig::PaperTestbed(2, 2, 0.05);
    config.datanode.cache_capacity_bytes = 0;  // stay cold: stay slow
    config.bloom.expected_keys = wc.num_join_keys;
    hw_ = std::make_unique<HybridWarehouse>(config);
    ASSERT_TRUE(LoadWorkload(hw_.get(), *workload_).ok());
  }
};

// The acceptance bullet: a second session runs SHOW PROCESSLIST while a
// join is in flight and sees its phase / elapsed / memory; KILL makes the
// running Execute return a clean kCancelled with no leaked governor
// reservations.
TEST_F(SlowServerTest, ShowProcesslistThenKillTerminatesCleanly) {
  WarehouseServer server(hw_.get(), ServerConfig{});
  const uint64_t runner_session = server.OpenSession();
  const uint64_t admin_session = server.OpenSession();

  QueryQuotas quota;
  quota.memory_bytes = 64 * 1024 * 1024;  // a real governor budget to report
  Status run_status = Status::OK();
  std::thread runner([&] {
    run_status = server.Execute(runner_session, kQuery, quota).status();
  });

  // Wait for the query to appear in the live process list.
  std::vector<obs::LiveQuery> rows;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (rows.empty() && std::chrono::steady_clock::now() < deadline) {
    rows = server.ProcessList();
    if (rows.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  ASSERT_FALSE(rows.empty()) << "query never registered";
  const obs::LiveQuery live = rows[0];
  EXPECT_GT(live.query_id, 0u);
  EXPECT_EQ(live.session_id, runner_session);
  EXPECT_EQ(live.sql, kQuery);
  EXPECT_FALSE(live.phase.empty());
  EXPECT_GE(live.elapsed_seconds, 0.0);
  EXPECT_EQ(live.mem_budget_bytes, quota.memory_bytes);
  EXPECT_FALSE(live.cancel_requested);

  // SHOW PROCESSLIST from the second session sees the same row.
  auto shown = server.ExecuteStatement(admin_session, "SHOW PROCESSLIST");
  ASSERT_TRUE(shown.ok()) << shown.status().ToString();
  EXPECT_NE(shown->admin_text.find(std::to_string(live.query_id)),
            std::string::npos)
      << shown->admin_text;
  EXPECT_NE(shown->admin_text.find(live.phase), std::string::npos);

  // KILL through the statement front end; the runner unwinds with
  // kCancelled at its next cooperative checkpoint.
  auto killed = server.ExecuteStatement(
      admin_session, "KILL " + std::to_string(live.query_id));
  ASSERT_TRUE(killed.ok()) << killed.status().ToString();
  EXPECT_NE(killed->admin_text.find("killing query"), std::string::npos);
  runner.join();
  EXPECT_EQ(run_status.code(), StatusCode::kCancelled)
      << run_status.ToString();

  // Clean unwind: the query left the registry, every governor reservation
  // was released (the leak counter stays zero), and the kill was counted.
  EXPECT_TRUE(server.ProcessList().empty());
  EXPECT_EQ(hw_->context().metrics().Get(metric::kServerGovernorLeakedBytes),
            0);
  EXPECT_EQ(server.stats().killed, 1);
  EXPECT_EQ(server.Kill(live.query_id).code(), StatusCode::kNotFound);

  // The warehouse stays healthy after a kill: the next query succeeds.
  auto next = server.Execute(admin_session, kQuery);
  EXPECT_TRUE(next.ok()) << next.status().ToString();
}

TEST_F(ServerTest, AdminStatementsAnswerWithoutAdmission) {
  ServerConfig sc;
  sc.admission.max_concurrent_queries = 1;
  WarehouseServer server(hw_.get(), sc);
  const uint64_t session = server.OpenSession();

  // Admin statements answer even with the only execution slot pinned.
  auto pinned = server.admission().Admit();
  ASSERT_TRUE(pinned.ok());

  auto processlist = server.ExecuteStatement(session, "SHOW PROCESSLIST");
  ASSERT_TRUE(processlist.ok());
  EXPECT_NE(processlist->admin_text.find("no queries in flight"),
            std::string::npos);

  auto sessions = server.ExecuteStatement(session, "show sessions");
  ASSERT_TRUE(sessions.ok());
  EXPECT_NE(sessions->admin_text.find(std::to_string(session)),
            std::string::npos);

  auto metrics = server.ExecuteStatement(session, "SHOW METRICS");
  ASSERT_TRUE(metrics.ok());
  EXPECT_TRUE(obs::ValidatePrometheus(metrics->admin_text).ok())
      << metrics->admin_text;

  // Unknown session / malformed statements fail cleanly.
  EXPECT_EQ(server.ExecuteStatement(999999, "SHOW METRICS").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(server.ExecuteStatement(session, "KILL 424242").status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(server.ExecuteStatement(session, "SHOW NONSENSE").ok());
}

// Satellite (f): 50 plane start/stop cycles (sampler thread, scrape
// listener, event log) with bounded joins — runs under the TSan CI job.
TEST_F(ServerTest, ObservabilityPlaneStartStop50x) {
  const std::string log_path =
      ::testing::TempDir() + "/hj_plane_cycle_events.jsonl";
  for (int i = 0; i < 50; ++i) {
    ServerConfig sc;
    sc.observability.metrics_http = true;
    sc.observability.metrics_http_port = 0;  // ephemeral
    sc.observability.sample_interval = std::chrono::milliseconds(1);
    sc.observability.event_log_path = log_path;
    WarehouseServer server(hw_.get(), sc);
    ASSERT_NE(server.metrics_port(), 0) << "cycle " << i;
    ASSERT_NE(server.sampler(), nullptr);
    EXPECT_TRUE(server.sampler()->running());
    if (i % 10 == 0) {
      // Occasionally do real work mid-cycle so the threads sample live
      // state, not an idle registry.
      const uint64_t session = server.OpenSession();
      EXPECT_TRUE(obs::ValidatePrometheus(server.MetricsText()).ok());
      (void)server.CloseSession(session);
    }
    server.Shutdown();
    EXPECT_FALSE(obs::EventLog::Global().enabled()) << "cycle " << i;
  }
  std::remove(log_path.c_str());
}

// The lifecycle acceptance bullet: an 8-way concurrent run leaves an event
// log whose every query correlates admit -> start -> finish by ticket and
// query id, and whose scraped queries-executed counter equals the registry.
TEST_F(ServerTest, EventLogLifecycleCorrelatesAcrossEightWayRun) {
  const std::string log_path =
      ::testing::TempDir() + "/hj_lifecycle_events.jsonl";
  constexpr int kClients = 8;
  int64_t executed_before = 0;
  int64_t executed_after = 0;
  std::string scraped;
  {
    ServerConfig sc;
    sc.admission.max_concurrent_queries = 4;
    sc.admission.max_queued = 32;
    sc.admission.queue_timeout = std::chrono::milliseconds(60000);
    sc.observability.event_log_path = log_path;
    WarehouseServer server(hw_.get(), sc);
    executed_before = hw_->context().metrics().Get(
        metric::kServerQueriesExecuted);

    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&] {
        const uint64_t session = server.OpenSession();
        if (!server.Execute(session, kQuery).ok()) failures.fetch_add(1);
        (void)server.CloseSession(session);
      });
    }
    for (auto& t : threads) t.join();
    ASSERT_EQ(failures.load(), 0);

    scraped = server.MetricsText();
    executed_after = hw_->context().metrics().Get(
        metric::kServerQueriesExecuted);
    server.Shutdown();  // closes the event log so every line is on disk
  }
  EXPECT_EQ(executed_after - executed_before, kClients);

  // The scraped exposition is valid and its counter equals the registry.
  ASSERT_TRUE(obs::ValidatePrometheus(scraped).ok());
  EXPECT_NE(scraped.find("hj_server_queries_executed_total " +
                         std::to_string(executed_after) + "\n"),
            std::string::npos)
      << scraped;

  // Replay the log: per ticket, admit then start then finish, with start
  // and finish agreeing on the engine query id.
  std::ifstream in(log_path);
  ASSERT_TRUE(in.is_open());
  std::map<int64_t, int> admits;              // ticket -> count
  std::map<int64_t, int64_t> start_query;     // ticket -> query id
  std::map<int64_t, int64_t> finish_query;    // ticket -> query id
  std::string line;
  while (std::getline(in, line)) {
    auto parsed = obs::JsonValue::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    const obs::JsonValue event = std::move(parsed).value();
    const std::string name = event.Find("event")->AsString();
    const obs::JsonValue* ticket = event.Find("ticket_id");
    if (name == "admit") {
      ASSERT_NE(ticket, nullptr) << line;
      admits[ticket->AsInt()]++;
    } else if (name == "start") {
      ASSERT_NE(ticket, nullptr) << line;
      start_query[ticket->AsInt()] = event.Find("query_id")->AsInt();
    } else if (name == "finish") {
      ASSERT_NE(ticket, nullptr) << line;
      finish_query[ticket->AsInt()] = event.Find("query_id")->AsInt();
      EXPECT_EQ(event.Find("status")->AsString(), "OK") << line;
    }
  }
  ASSERT_EQ(admits.size(), static_cast<size_t>(kClients));
  ASSERT_EQ(start_query.size(), static_cast<size_t>(kClients));
  ASSERT_EQ(finish_query.size(), static_cast<size_t>(kClients));
  std::set<int64_t> query_ids;
  for (const auto& [ticket_id, count] : admits) {
    EXPECT_EQ(count, 1) << "ticket " << ticket_id;
    ASSERT_TRUE(start_query.count(ticket_id)) << "ticket " << ticket_id;
    ASSERT_TRUE(finish_query.count(ticket_id)) << "ticket " << ticket_id;
    EXPECT_EQ(start_query[ticket_id], finish_query[ticket_id])
        << "ticket " << ticket_id;
    EXPECT_GT(start_query[ticket_id], 0) << "ticket " << ticket_id;
    EXPECT_TRUE(query_ids.insert(start_query[ticket_id]).second)
        << "duplicate engine query id for ticket " << ticket_id;
  }
  std::remove(log_path.c_str());
}

TEST(AdmissionControllerTest, FifoGrantAndCloseShedsWaiters) {
  server::AdmissionConfig config;
  config.max_concurrent_queries = 1;
  config.max_queued = 8;
  config.queue_timeout = std::chrono::milliseconds(60000);
  AdmissionController controller(config);

  auto first = controller.Admit();
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->queued());

  // Granted slots are parked (not released) so the grant chain cannot
  // cascade through all waiters before Close gets its turn.
  std::mutex slots_mu;
  std::vector<AdmissionController::Slot> held_slots;
  std::atomic<int> granted{0};
  std::atomic<int> closed{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&] {
      auto slot = controller.Admit();
      if (slot.ok()) {
        EXPECT_TRUE(slot->queued());
        granted.fetch_add(1);
        std::lock_guard<std::mutex> lock(slots_mu);
        held_slots.push_back(std::move(slot).value());
      } else if (slot.status().code() == StatusCode::kUnavailable) {
        closed.fetch_add(1);
      }
    });
  }
  while (controller.stats().queued_now < 4) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Release once: exactly one waiter gets the slot (and keeps it); the
  // other three wait until Close sheds them with kUnavailable.
  first->Release();
  while (granted.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  controller.Close();
  for (auto& t : waiters) t.join();

  EXPECT_EQ(granted.load(), 1);
  EXPECT_EQ(closed.load(), 3);
  const server::AdmissionStats stats = controller.stats();
  EXPECT_EQ(stats.admitted, 2);  // the pinned slot + the granted waiter
  EXPECT_EQ(stats.admitted_queued, 1);
  EXPECT_EQ(stats.rejected_closed + stats.shed, 3);
  // Closed controller rejects new arrivals immediately; slots granted
  // before Close stay valid until released.
  EXPECT_EQ(controller.Admit().status().code(), StatusCode::kUnavailable);
  held_slots.clear();
  EXPECT_EQ(controller.stats().running, 0u);
}

}  // namespace
}  // namespace hybridjoin
