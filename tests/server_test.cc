// WarehouseServer tests: session lifecycle, the admission gate
// (queue-then-shed, FIFO grant), per-session rate limiting, memory quotas,
// and — the load-bearing part — N concurrent queries through one warehouse
// all matching the single-node reference oracle with per-query isolated
// profiles (concurrent EXPLAIN ANALYZE must not cross-contaminate).
// The whole suite runs under the TSan CI job, so the catalog RW locks and
// the query-scoped metric store are exercised under a race detector.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "hybrid/reference.h"
#include "server/warehouse_server.h"
#include "testing/differential.h"
#include "workload/loader.h"

namespace hybridjoin {
namespace {

using server::AdmissionController;
using server::QueryQuotas;
using server::ServerConfig;
using server::ServerResult;
using server::ServerStats;
using server::WarehouseServer;

const char kQuery[] =
    "SELECT extract_group(L.groupByExtractCol), COUNT(*) "
    "FROM T, L "
    "WHERE T.corPred < 200000 AND L.corPred < 400000 "
    "  AND T.joinKey = L.joinKey "
    "  AND T.predAfterJoin - L.predAfterJoin BETWEEN 0 AND 1 "
    "GROUP BY extract_group(L.groupByExtractCol)";

/// Small but non-trivial warehouse shared by the concurrency tests.
class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WorkloadConfig wc;
    wc.num_join_keys = 512;
    wc.t_rows = 8 * 1024;
    wc.l_rows = 32 * 1024;
    InitWarehouse(wc);
  }

  void InitWarehouse(const WorkloadConfig& wc) {
    auto workload = Workload::Generate(wc, {0.1, 0.1, 0.5, 0.5});
    ASSERT_TRUE(workload.ok()) << workload.status().ToString();
    workload_ = std::make_unique<Workload>(std::move(workload).value());

    SimulationConfig config;
    config.db.num_workers = 2;
    config.jen_workers = 2;
    config.bloom.expected_keys = wc.num_join_keys;
    hw_ = std::make_unique<HybridWarehouse>(config);
    ASSERT_TRUE(LoadWorkload(hw_.get(), *workload_).ok());

    // The oracle must run the same query the server will parse from
    // kQuery (its literals differ from the workload's solved ones).
    auto query = hw_->ParseSql(kQuery);
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    auto oracle = RunReferenceJoin({workload_->t_rows()},
                                   workload_->l_batches(), *query);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    oracle_ = std::make_unique<RecordBatch>(std::move(oracle).value());
  }

  std::unique_ptr<Workload> workload_;
  std::unique_ptr<HybridWarehouse> hw_;
  std::unique_ptr<RecordBatch> oracle_;
};

TEST_F(ServerTest, SessionLifecycle) {
  WarehouseServer server(hw_.get(), ServerConfig{});
  const uint64_t s1 = server.OpenSession();
  const uint64_t s2 = server.OpenSession();
  EXPECT_NE(s1, s2);
  EXPECT_EQ(server.stats().open_sessions, 2u);

  // Unknown / closed sessions fail kNotFound.
  EXPECT_EQ(server.Execute(999999, kQuery).status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(server.CloseSession(s2).ok());
  EXPECT_EQ(server.Execute(s2, kQuery).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(server.CloseSession(s2).code(), StatusCode::kNotFound);

  // A live session executes and gets a populated ticket.
  auto result = server.Execute(s1, kQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->ticket.ticket_id, 0u);
  EXPECT_GT(result->ticket.query_id, 0u);
  EXPECT_EQ(result->ticket.session_id, s1);
  EXPECT_FALSE(result->ticket.queued);

  // After Shutdown everything is kUnavailable; the destructor is idempotent.
  server.Shutdown();
  EXPECT_EQ(server.Execute(s1, kQuery).status().code(),
            StatusCode::kUnavailable);
}

// The acceptance bullet: N concurrent queries through one warehouse, every
// result equal to the reference oracle, every ticket carrying a distinct
// query id, and every profile isolated — its data counters identical to a
// solo run's, unaffected by the neighbors executing at the same time.
TEST_F(ServerTest, ConcurrentQueriesMatchReferenceWithIsolatedProfiles) {
  ServerConfig sc;
  sc.admission.max_concurrent_queries = 4;
  sc.admission.max_queued = 32;
  sc.admission.queue_timeout = std::chrono::milliseconds(60000);
  WarehouseServer server(hw_.get(), sc);

  // Solo run: the baseline for the per-query data counters. These are pure
  // functions of (data, query, algorithm) — unlike wall-time counters —
  // so a concurrent run whose scoped slices got polluted by a neighbor
  // would show inflated totals.
  const uint64_t baseline_session = server.OpenSession();
  auto solo = server.Execute(baseline_session, kQuery);
  ASSERT_TRUE(solo.ok()) << solo.status().ToString();
  const obs::QueryProfile& solo_profile = solo->result.report.profile;
  ASSERT_FALSE(solo_profile.empty());
  const std::vector<std::pair<std::string, std::string>> kDataCounters = {
      {"scan", "jen.tuples_scanned"},
      {"scan", "edw.tuples_scanned"},
      {"build", "join.ht_rows"},
  };
  std::vector<std::pair<std::pair<std::string, std::string>, int64_t>>
      baseline;
  for (const auto& [phase, name] : kDataCounters) {
    if (const auto* row = solo_profile.FindCounter(phase, name)) {
      baseline.emplace_back(std::make_pair(phase, name), row->total);
    }
  }
  ASSERT_FALSE(baseline.empty());

  constexpr int kClients = 8;
  std::vector<Result<ServerResult>> results(
      kClients, Result<ServerResult>(Status::Internal("not run")));
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      const uint64_t session = server.OpenSession();
      results[c] = server.Execute(session, kQuery);
      (void)server.CloseSession(session);
    });
  }
  for (auto& t : threads) t.join();

  std::set<uint64_t> query_ids{solo->ticket.query_id};
  for (int c = 0; c < kClients; ++c) {
    ASSERT_TRUE(results[c].ok())
        << "client " << c << ": " << results[c].status().ToString();
    const ServerResult& r = results[c].value();

    // Correctness: byte-for-byte equal to the single-node oracle.
    auto diff = testing_support::CompareBatches(*oracle_, r.result.rows);
    EXPECT_FALSE(diff.has_value()) << "client " << c << ": " << *diff;

    // Distinct query ids, ticket consistent with the assembled profile.
    EXPECT_GT(r.ticket.query_id, 0u);
    EXPECT_TRUE(query_ids.insert(r.ticket.query_id).second)
        << "duplicate query id " << r.ticket.query_id;
    EXPECT_EQ(r.result.report.profile.query_id, r.ticket.query_id);

    // Profile isolation: each concurrent profile reports exactly the solo
    // totals for the deterministic data counters.
    for (const auto& [key, solo_total] : baseline) {
      const auto* row =
          r.result.report.profile.FindCounter(key.first, key.second);
      ASSERT_NE(row, nullptr)
          << "client " << c << " lost " << key.first << "/" << key.second;
      EXPECT_EQ(row->total, solo_total)
          << "client " << c << " profile contaminated at " << key.first
          << "/" << key.second;
    }
  }

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.executed, kClients + 1);
  EXPECT_EQ(stats.admission.shed, 0);
  EXPECT_EQ(stats.admission.running, 0u);
}

// DDL through the HybridWarehouse facade (EDW catalog writers + HCatalog
// registration) interleaved with live queries: the catalog RW locks must
// let both proceed without a data race (TSan job) or a wrong answer.
TEST_F(ServerTest, ConcurrentDdlAndQueries) {
  ServerConfig sc;
  sc.admission.max_concurrent_queries = 4;
  sc.admission.queue_timeout = std::chrono::milliseconds(60000);
  WarehouseServer server(hw_.get(), sc);

  std::atomic<bool> ddl_ok{true};
  std::thread ddl([&] {
    SchemaPtr schema =
        Schema::Make({{"k", DataType::kInt32}, {"v", DataType::kInt64}});
    RecordBatch rows(schema);
    for (int32_t i = 0; i < 256; ++i) {
      rows.AppendRow({Value(i), Value(int64_t{i} * 7)});
    }
    for (int i = 0; i < 6; ++i) {
      const std::string name = "ddl_side_" + std::to_string(i);
      if (!hw_->CreateDbTable({name, schema, "k"}).ok() ||
          !hw_->LoadDbTable(name, rows).ok() ||
          !hw_->CreateDbIndex(name, {"k", "v"}).ok() ||
          !hw_->WriteHdfsTable("ddl_hdfs_" + std::to_string(i), schema,
                               HdfsWriteOptions{}, {rows})
               .ok()) {
        ddl_ok.store(false);
      }
    }
  });

  constexpr int kClients = 3;
  constexpr int kQueriesEach = 2;
  std::atomic<int> query_failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      const uint64_t session = server.OpenSession();
      for (int q = 0; q < kQueriesEach; ++q) {
        auto result = server.Execute(session, kQuery);
        if (!result.ok() ||
            testing_support::CompareBatches(*oracle_, result->result.rows)
                .has_value()) {
          query_failures.fetch_add(1);
        }
      }
      (void)server.CloseSession(session);
    });
  }
  ddl.join();
  for (auto& t : threads) t.join();

  EXPECT_TRUE(ddl_ok.load());
  EXPECT_EQ(query_failures.load(), 0);
  // The DDL really landed while queries were flowing.
  EXPECT_TRUE(hw_->context().db().LookupTable("ddl_side_5").ok());
  EXPECT_TRUE(hw_->context().hcatalog().Lookup("ddl_hdfs_5").ok());
}

// Queries past the admission limit queue; past the deadline they shed with
// kResourceExhausted — deterministically, by pinning the only slot from the
// test instead of racing against query runtimes.
TEST_F(ServerTest, AdmissionQueuesThenSheds) {
  ServerConfig sc;
  sc.admission.max_concurrent_queries = 1;
  sc.admission.max_queued = 2;
  sc.admission.queue_timeout = std::chrono::milliseconds(50);
  WarehouseServer server(hw_.get(), sc);
  const uint64_t session = server.OpenSession();

  {
    // Pin the only execution slot.
    auto pinned = server.admission().Admit();
    ASSERT_TRUE(pinned.ok());

    constexpr int kBlocked = 3;
    std::vector<StatusCode> codes(kBlocked, StatusCode::kOk);
    std::vector<std::thread> threads;
    for (int i = 0; i < kBlocked; ++i) {
      threads.emplace_back([&, i] {
        codes[i] = server.Execute(session, kQuery).status().code();
      });
    }
    for (auto& t : threads) t.join();
    for (int i = 0; i < kBlocked; ++i) {
      EXPECT_EQ(codes[i], StatusCode::kResourceExhausted) << "waiter " << i;
    }
    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.admission.shed, kBlocked);
    EXPECT_EQ(stats.executed, 0);
  }  // pinned slot released

  // With the slot free again, the same session executes normally.
  auto result = server.Execute(session, kQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(server.stats().admission.shed, 3);
}

// A queued query whose turn comes before the deadline is admitted (not
// shed) and its ticket records the queue wait.
TEST_F(ServerTest, QueuedQueryIsGrantedWhenSlotFrees) {
  ServerConfig sc;
  sc.admission.max_concurrent_queries = 1;
  sc.admission.max_queued = 4;
  sc.admission.queue_timeout = std::chrono::milliseconds(60000);
  WarehouseServer server(hw_.get(), sc);
  const uint64_t session = server.OpenSession();

  auto pinned = server.admission().Admit();
  ASSERT_TRUE(pinned.ok());

  std::thread waiter_thread([&] {
    auto result = server.Execute(session, kQuery);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->ticket.queued);
    EXPECT_GT(result->ticket.queue_wait_us, 0);
  });

  // Give the waiter time to enter the queue, then free the slot.
  while (server.stats().admission.queued_now == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  pinned.value().Release();
  waiter_thread.join();

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.admission.admitted_queued, 1);
  EXPECT_EQ(stats.admission.shed, 0);
}

TEST_F(ServerTest, SessionRateLimitSheds) {
  // The shed assertion below is only meaningful while the bucket is still
  // empty, i.e. the first query must finish well inside the 1-second refill
  // period. A deliberately tiny warehouse keeps it there even on a loaded
  // CI machine; if the machine is too slow anyway, skip rather than flake.
  WorkloadConfig tiny;
  tiny.num_join_keys = 128;
  tiny.t_rows = 512;
  tiny.l_rows = 2048;
  InitWarehouse(tiny);

  ServerConfig sc;
  sc.session_queries_per_second = 1;  // refill far slower than the test
  sc.session_burst_queries = 1;
  sc.rate_limit_wait = std::chrono::milliseconds(0);
  WarehouseServer server(hw_.get(), sc);
  const uint64_t session = server.OpenSession();

  // First query spends the burst token; the immediate second one sheds.
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(server.Execute(session, kQuery).ok());
  if (std::chrono::steady_clock::now() - t0 >=
      std::chrono::milliseconds(800)) {
    GTEST_SKIP() << "machine too loaded for the 1s token-refill window";
  }
  auto second = server.Execute(session, kQuery);
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(server.stats().rate_limited, 1);

  // The limit is per session: a fresh session has its own bucket.
  const uint64_t other = server.OpenSession();
  EXPECT_TRUE(server.Execute(other, kQuery).ok());
}

TEST_F(ServerTest, MemoryQuotaRejectsBeforeAdmission) {
  WarehouseServer server(hw_.get(), ServerConfig{});
  const uint64_t session = server.OpenSession();

  QueryQuotas tight;
  tight.memory_bytes = 1;  // no build side fits in one byte
  auto rejected = server.Execute(session, kQuery, tight);
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.quota_rejected, 1);
  EXPECT_EQ(stats.admission.admitted, 0);  // never reached the gate

  QueryQuotas roomy;
  roomy.memory_bytes = 1ull << 40;
  EXPECT_TRUE(server.Execute(session, kQuery, roomy).ok());
}

/// A warehouse whose working set genuinely exceeds the minimum admissible
/// quota, so a 64 KiB-class budget puts the governor under real pressure.
class PressuredServerTest : public ServerTest {
 protected:
  void SetUp() override {
    WorkloadConfig wc;
    wc.num_join_keys = 2048;
    wc.t_rows = 64 * 1024;
    wc.l_rows = 64 * 1024;
    InitWarehouse(wc);
  }
};

// A query admitted with a quota below its working set completes by
// spilling (never an error), still matches the oracle, and its EXPLAIN
// ANALYZE profile shows the spill traffic under the canonical names.
TEST_F(PressuredServerTest, SmallMemoryQuotaCompletesViaSpilling) {
  WarehouseServer server(hw_.get(), ServerConfig{});
  const uint64_t session = server.OpenSession();

  QueryQuotas tight;
  tight.memory_bytes = 96 * 1024;  // >= kMinQuotaBytes, < the working set
  ASSERT_GE(tight.memory_bytes, WarehouseServer::kMinQuotaBytes);
  auto result = server.Execute(session, kQuery, tight);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto diff = testing_support::CompareBatches(*oracle_, result->result.rows);
  EXPECT_FALSE(diff.has_value()) << *diff;

  const obs::QueryProfile& profile = result->result.report.profile;
  const auto* spilled = profile.FindCounter("spill", "join.spill_bytes");
  ASSERT_NE(spilled, nullptr) << profile.ToText();
  EXPECT_GT(spilled->total, 0);
  EXPECT_EQ(server.stats().quota_rejected, 0);
}

// The governor holds the query to its quota: the profile's peak-memory
// gauge never exceeds the admitted budget (spilling, not overcommit, is
// how the working set fits).
TEST_F(PressuredServerTest, MemPeakStaysWithinQuota) {
  WarehouseServer server(hw_.get(), ServerConfig{});
  const uint64_t session = server.OpenSession();

  QueryQuotas quota;
  quota.memory_bytes = 256 * 1024;
  auto result = server.Execute(session, kQuery, quota);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto diff = testing_support::CompareBatches(*oracle_, result->result.rows);
  EXPECT_FALSE(diff.has_value()) << *diff;

  const obs::QueryProfile& profile = result->result.report.profile;
  const auto* peak = profile.FindCounter("driver", "join.mem_peak_bytes");
  ASSERT_NE(peak, nullptr) << profile.ToText();
  EXPECT_GT(peak->total, 0);
  EXPECT_LE(peak->total, static_cast<int64_t>(quota.memory_bytes));
}

TEST(AdmissionControllerTest, FifoGrantAndCloseShedsWaiters) {
  server::AdmissionConfig config;
  config.max_concurrent_queries = 1;
  config.max_queued = 8;
  config.queue_timeout = std::chrono::milliseconds(60000);
  AdmissionController controller(config);

  auto first = controller.Admit();
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->queued());

  // Granted slots are parked (not released) so the grant chain cannot
  // cascade through all waiters before Close gets its turn.
  std::mutex slots_mu;
  std::vector<AdmissionController::Slot> held_slots;
  std::atomic<int> granted{0};
  std::atomic<int> closed{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&] {
      auto slot = controller.Admit();
      if (slot.ok()) {
        EXPECT_TRUE(slot->queued());
        granted.fetch_add(1);
        std::lock_guard<std::mutex> lock(slots_mu);
        held_slots.push_back(std::move(slot).value());
      } else if (slot.status().code() == StatusCode::kUnavailable) {
        closed.fetch_add(1);
      }
    });
  }
  while (controller.stats().queued_now < 4) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Release once: exactly one waiter gets the slot (and keeps it); the
  // other three wait until Close sheds them with kUnavailable.
  first->Release();
  while (granted.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  controller.Close();
  for (auto& t : waiters) t.join();

  EXPECT_EQ(granted.load(), 1);
  EXPECT_EQ(closed.load(), 3);
  const server::AdmissionStats stats = controller.stats();
  EXPECT_EQ(stats.admitted, 2);  // the pinned slot + the granted waiter
  EXPECT_EQ(stats.admitted_queued, 1);
  EXPECT_EQ(stats.rejected_closed + stats.shed, 3);
  // Closed controller rejects new arrivals immediately; slots granted
  // before Close stay valid until released.
  EXPECT_EQ(controller.Admit().status().code(), StatusCode::kUnavailable);
  held_slots.clear();
  EXPECT_EQ(controller.stats().running, 0u);
}

}  // namespace
}  // namespace hybridjoin
