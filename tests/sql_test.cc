// Tests for the SQL front end: lexer, parser (including the paper's §2 /
// §4.1.1 query shapes), error reporting, and end-to-end equivalence of a
// SQL statement against the hand-built HybridQuery.

#include <gtest/gtest.h>

#include "expr/scalar_functions.h"
#include "hybrid/reference.h"
#include "hybrid/warehouse.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "workload/loader.h"

namespace hybridjoin {
namespace {

using sql::TableResolver;
using sql::TableSideKind;
using sql::Token;
using sql::TokenKind;
using sql::Tokenize;

// -------------------------------- Lexer -----------------------------------

TEST(SqlLexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT a.b, COUNT(*) FROM t WHERE x <= 10");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 14u);
  EXPECT_TRUE((*tokens)[0].Is("select"));
  EXPECT_TRUE((*tokens)[1].Is("a"));
  EXPECT_TRUE((*tokens)[2].IsSymbol("."));
  EXPECT_TRUE((*tokens)[4].IsSymbol(","));
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
  // "<=" is one token.
  bool found_le = false;
  for (const Token& t : *tokens) found_le |= t.IsSymbol("<=");
  EXPECT_TRUE(found_le);
}

TEST(SqlLexerTest, StringsWithEscapes) {
  auto tokens = Tokenize("'Canon Camera' 'O''Brien'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "Canon Camera");
  EXPECT_EQ((*tokens)[1].text, "O'Brien");
}

TEST(SqlLexerTest, NotEqualsVariants) {
  auto tokens = Tokenize("a <> b != c");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[1].IsSymbol("<>"));
  EXPECT_TRUE((*tokens)[3].IsSymbol("<>"));  // != normalized
}

TEST(SqlLexerTest, Errors) {
  EXPECT_FALSE(Tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(Tokenize("a ; b").ok());
}

// -------------------------------- Parser ----------------------------------

class SqlParserTest : public testing::Test {
 protected:
  TableResolver Resolver() {
    TableResolver r;
    r.side = [](const std::string& table) -> Result<TableSideKind> {
      if (table == "T") return TableSideKind::kDb;
      if (table == "L") return TableSideKind::kHdfs;
      return Status::NotFound("no table " + table);
    };
    r.schema = [](const std::string& table) -> Result<SchemaPtr> {
      if (table == "T") return Workload::TSchema();
      if (table == "L") return Workload::LSchema();
      return Status::NotFound("no table " + table);
    };
    return r;
  }

  Result<HybridQuery> Parse(const std::string& statement) {
    const TableResolver r = Resolver();
    return sql::ParseHybridQuery(statement, r);
  }
};

TEST_F(SqlParserTest, ParsesThePapersExampleQueryShape) {
  auto q = Parse(
      "SELECT extract_group(L.groupByExtractCol), COUNT(*) "
      "FROM T, L "
      "WHERE T.corPred < 100000 AND T.indPred < 500000 "
      "AND L.corPred < 400000 AND L.indPred < 1000000 "
      "AND T.joinKey = L.joinKey "
      "AND T.predAfterJoin - L.predAfterJoin BETWEEN 0 AND 1 "
      "GROUP BY extract_group(L.groupByExtractCol)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->db.table, "T");
  EXPECT_EQ(q->hdfs.table, "L");
  EXPECT_EQ(q->db.join_key, "joinKey");
  EXPECT_EQ(q->hdfs.join_key, "joinKey");
  ASSERT_NE(q->db.predicate, nullptr);
  ASSERT_NE(q->hdfs.predicate, nullptr);
  ASSERT_NE(q->post_join_predicate, nullptr);
  EXPECT_TRUE(q->agg.extract_group);
  EXPECT_EQ(q->agg.group_column, "L.groupByExtractCol");
  ASSERT_EQ(q->agg.items.size(), 1u);
  EXPECT_EQ(q->agg.items[0].op, AggOp::kCountStar);
  // Projections include exactly what travels: join key + post-join +
  // group columns.
  EXPECT_EQ(q->db.projection,
            (std::vector<std::string>{"joinKey", "predAfterJoin"}));
  EXPECT_EQ(q->hdfs.projection,
            (std::vector<std::string>{"joinKey", "predAfterJoin",
                                      "groupByExtractCol"}));
}

TEST_F(SqlParserTest, TableOrderAndAliasesAreFlexible) {
  auto q = Parse(
      "SELECT extract_group(logs.groupByExtractCol), COUNT(*) AS views "
      "FROM L logs, T txn "
      "WHERE txn.joinKey = logs.joinKey "
      "GROUP BY extract_group(logs.groupByExtractCol)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->db.alias, "txn");
  EXPECT_EQ(q->hdfs.alias, "logs");
  EXPECT_EQ(q->agg.items[0].result_name, "views");
}

TEST_F(SqlParserTest, AggregatesAndLiterals) {
  auto q = Parse(
      "SELECT L.joinKey, COUNT(*), SUM(T.dummy2) AS total, MIN(dummy2), "
      "MAX(T.dummy2) "
      "FROM T, L "
      "WHERE T.joinKey = L.joinKey AND T.predAfterJoin >= DATE '2014-01-01' "
      "AND L.groupByExtractCol LIKE 'g1%' "
      "AND (T.corPred < 5 OR NOT T.indPred BETWEEN 10 AND 20) "
      "GROUP BY L.joinKey");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_FALSE(q->agg.extract_group);
  ASSERT_EQ(q->agg.items.size(), 4u);
  EXPECT_EQ(q->agg.items[1].result_name, "total");
  EXPECT_EQ(q->agg.items[1].column, "T.dummy2");
  EXPECT_EQ(q->agg.items[2].op, AggOp::kMin);
  // Date literal resolved to days-since-epoch.
  EXPECT_NE(q->db.predicate->ToString().find(
                std::to_string(DaysFromCivil(2014, 1, 1))),
            std::string::npos);
  // LIKE became a prefix predicate on the HDFS side.
  EXPECT_NE(q->hdfs.predicate->ToString().find("LIKE 'g1%'"),
            std::string::npos);
}

TEST_F(SqlParserTest, RejectsMalformedStatements) {
  // Missing join.
  EXPECT_FALSE(Parse("SELECT L.joinKey, COUNT(*) FROM T, L "
                     "GROUP BY L.joinKey")
                   .ok());
  // No aggregate.
  EXPECT_FALSE(Parse("SELECT L.joinKey FROM T, L "
                     "WHERE T.joinKey = L.joinKey GROUP BY L.joinKey")
                   .ok());
  // GROUP BY mismatch.
  EXPECT_FALSE(Parse("SELECT L.joinKey, COUNT(*) FROM T, L "
                     "WHERE T.joinKey = L.joinKey GROUP BY L.corPred")
                   .ok());
  // Unknown column.
  EXPECT_FALSE(Parse("SELECT L.joinKey, COUNT(*) FROM T, L "
                     "WHERE T.joinKey = L.joinKey AND T.bogus < 1 "
                     "GROUP BY L.joinKey")
                   .ok());
  // Unknown table.
  EXPECT_FALSE(Parse("SELECT L.joinKey, COUNT(*) FROM X, L "
                     "WHERE X.joinKey = L.joinKey GROUP BY L.joinKey")
                   .ok());
  // OR across sides.
  EXPECT_FALSE(Parse("SELECT L.joinKey, COUNT(*) FROM T, L "
                     "WHERE T.joinKey = L.joinKey AND "
                     "(T.corPred < 1 OR L.corPred < 1) "
                     "GROUP BY L.joinKey")
                   .ok());
  // Two joins.
  EXPECT_FALSE(Parse("SELECT L.joinKey, COUNT(*) FROM T, L "
                     "WHERE T.joinKey = L.joinKey AND T.corPred = L.corPred "
                     "GROUP BY L.joinKey")
                   .ok());
  // Trailing garbage.
  EXPECT_FALSE(Parse("SELECT L.joinKey, COUNT(*) FROM T, L "
                     "WHERE T.joinKey = L.joinKey GROUP BY L.joinKey LIMIT 5")
                   .ok());
  // Ambiguous unqualified column (joinKey exists on both sides).
  EXPECT_FALSE(Parse("SELECT joinKey, COUNT(*) FROM T, L "
                     "WHERE T.joinKey = L.joinKey GROUP BY joinKey")
                   .ok());
}

// --------------------------- End-to-end via SQL ---------------------------

TEST(SqlEndToEndTest, SqlMatchesHandBuiltQuery) {
  WorkloadConfig wc;
  wc.num_join_keys = 512;
  wc.t_rows = 10000;
  wc.l_rows = 40000;
  auto workload = Workload::Generate(wc, {0.2, 0.3, 0.5, 0.5});
  ASSERT_TRUE(workload.ok());
  SimulationConfig config;
  config.db.num_workers = 3;
  config.jen_workers = 3;
  config.bloom.expected_keys = wc.num_join_keys;
  HybridWarehouse hw(config);
  ASSERT_TRUE(LoadWorkload(&hw, *workload).ok());

  const HybridQuery hand_built = workload->MakeQuery();
  const SolvedSpec& solved = workload->solved();
  const std::string statement =
      "SELECT extract_group(L.groupByExtractCol), COUNT(*) FROM T, L "
      "WHERE T.corPred < " + std::to_string(solved.t_cor_lit) +
      " AND T.indPred < " + std::to_string(solved.t_ind_lit) +
      " AND L.corPred < " + std::to_string(solved.l_cor_lit) +
      " AND L.indPred < " + std::to_string(solved.l_ind_lit) +
      " AND T.joinKey = L.joinKey"
      " AND T.predAfterJoin - L.predAfterJoin BETWEEN 0 AND 1 "
      "GROUP BY extract_group(L.groupByExtractCol)";

  auto via_sql = hw.ExecuteSql(statement, JoinAlgorithm::kZigzag);
  ASSERT_TRUE(via_sql.ok()) << via_sql.status();
  auto direct = hw.Execute(hand_built, JoinAlgorithm::kZigzag);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(via_sql->rows.num_rows(), direct->rows.num_rows());
  ASSERT_GT(via_sql->rows.num_rows(), 0u);
  for (size_t r = 0; r < via_sql->rows.num_rows(); ++r) {
    EXPECT_EQ(via_sql->rows.column(0).i64()[r],
              direct->rows.column(0).i64()[r]);
    EXPECT_EQ(via_sql->rows.column(1).i64()[r],
              direct->rows.column(1).i64()[r]);
  }

  // The warehouse resolver rejects unknown tables.
  EXPECT_FALSE(hw.ParseSql("SELECT x.a, COUNT(*) FROM nope x, L "
                           "WHERE x.a = L.joinKey GROUP BY x.a")
                   .ok());
}

}  // namespace
}  // namespace hybridjoin
