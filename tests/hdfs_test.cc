// Unit tests for the HDFS substrate: DataNode storage + page cache,
// NameNode placement/metadata, HCatalog, and the table writer.

#include <gtest/gtest.h>

#include <set>

#include "common/stopwatch.h"
#include "hdfs/hcatalog.h"
#include "hdfs/table_writer.h"

namespace hybridjoin {
namespace {

std::shared_ptr<const StoredBlock> TextBlock(size_t bytes, uint32_t rows) {
  auto block = std::make_shared<StoredBlock>();
  block->format = HdfsFormat::kText;
  block->text = std::make_shared<const std::vector<uint8_t>>(
      std::vector<uint8_t>(bytes, 'x'));
  block->num_rows = rows;
  return block;
}

// ------------------------------- DataNode ---------------------------------

TEST(DataNodeTest, StoreAndFetch) {
  DataNode node(0, DataNodeConfig{});
  ASSERT_TRUE(node.StoreBlock(1, 0, TextBlock(100, 10)).ok());
  auto fetched = node.Fetch(1);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ((*fetched)->ByteSize(), 100u);
  EXPECT_FALSE(node.Fetch(2).ok());
}

TEST(DataNodeTest, DuplicateBlockRejected) {
  DataNode node(0, DataNodeConfig{});
  ASSERT_TRUE(node.StoreBlock(1, 0, TextBlock(10, 1)).ok());
  EXPECT_EQ(node.StoreBlock(1, 1, TextBlock(10, 1)).code(),
              StatusCode::kAlreadyExists);
}

TEST(DataNodeTest, BadDiskRejected) {
  DataNodeConfig config;
  config.num_disks = 2;
  DataNode node(0, config);
  EXPECT_FALSE(node.StoreBlock(1, 5, TextBlock(10, 1)).ok());
}

TEST(DataNodeTest, SecondReadIsWarm) {
  DataNode node(0, DataNodeConfig{});
  ASSERT_TRUE(node.StoreBlock(1, 0, TextBlock(1000, 10)).ok());
  EXPECT_FALSE(node.AccountRead(1, 1000));  // cold
  EXPECT_TRUE(node.AccountRead(1, 1000));   // warm
  EXPECT_EQ(node.CacheUsedBytes(), 1000u);
  node.DropCache();
  EXPECT_EQ(node.CacheUsedBytes(), 0u);
  EXPECT_FALSE(node.AccountRead(1, 1000));  // cold again
}

TEST(DataNodeTest, CacheEvictsLruWhenFull) {
  DataNodeConfig config;
  config.cache_capacity_bytes = 2500;
  DataNode node(0, config);
  for (uint64_t b = 1; b <= 3; ++b) {
    ASSERT_TRUE(node.StoreBlock(b, 0, TextBlock(1000, 1)).ok());
  }
  node.AccountRead(1, 1000);
  node.AccountRead(2, 1000);
  node.AccountRead(3, 1000);  // evicts 1 (capacity 2500 fits two blocks)
  EXPECT_TRUE(node.AccountRead(3, 1000));
  EXPECT_TRUE(node.AccountRead(2, 1000));
  EXPECT_FALSE(node.AccountRead(1, 1000));  // was evicted -> cold
}

TEST(DataNodeTest, OversizedBlockBypassesCache) {
  DataNodeConfig config;
  config.cache_capacity_bytes = 100;
  DataNode node(0, config);
  ASSERT_TRUE(node.StoreBlock(1, 0, TextBlock(1000, 1)).ok());
  EXPECT_FALSE(node.AccountRead(1, 1000));
  EXPECT_FALSE(node.AccountRead(1, 1000));  // never cached
  EXPECT_EQ(node.CacheUsedBytes(), 0u);
}

TEST(DataNodeTest, ColdReadsThrottledWarmReadsFast) {
  DataNodeConfig config;
  config.disk_read_bps = 4 * 1024 * 1024;   // 4 MB/s cold
  config.cache_read_bps = 0;                // warm unlimited
  DataNode node(0, config);
  ASSERT_TRUE(node.StoreBlock(1, 0, TextBlock(1 << 20, 1)).ok());
  Stopwatch cold;
  node.AccountRead(1, (1 << 20) + 512 * 1024);  // ~1.5MB beyond burst
  EXPECT_GT(cold.ElapsedSeconds(), 0.15);
  Stopwatch warm;
  node.AccountRead(1, 1 << 20);
  EXPECT_LT(warm.ElapsedSeconds(), 0.05);
}

// ------------------------------- NameNode ---------------------------------

class NameNodeTest : public testing::Test {
 protected:
  void SetUp() override {
    DataNodeConfig config;
    config.num_disks = 2;
    for (uint32_t i = 0; i < 4; ++i) {
      nodes_.push_back(std::make_unique<DataNode>(i, config));
      ptrs_.push_back(nodes_.back().get());
    }
  }
  std::vector<std::unique_ptr<DataNode>> nodes_;
  std::vector<DataNode*> ptrs_;
};

TEST_F(NameNodeTest, FileLifecycle) {
  NameNode nn(ptrs_, 2);
  EXPECT_FALSE(nn.FileExists("/a"));
  ASSERT_TRUE(nn.CreateFile("/a").ok());
  EXPECT_TRUE(nn.FileExists("/a"));
  EXPECT_EQ(nn.CreateFile("/a").code(),
              StatusCode::kAlreadyExists);
  ASSERT_TRUE(nn.DeleteFile("/a").ok());
  EXPECT_FALSE(nn.FileExists("/a"));
  EXPECT_FALSE(nn.DeleteFile("/a").ok());
  EXPECT_FALSE(nn.GetBlocks("/a").ok());
}

TEST_F(NameNodeTest, ReplicationOnDistinctNodes) {
  NameNode nn(ptrs_, 2);
  ASSERT_TRUE(nn.CreateFile("/f").ok());
  for (int b = 0; b < 20; ++b) {
    ASSERT_TRUE(nn.AppendBlock("/f", TextBlock(100, 5)).ok());
  }
  auto blocks = nn.GetBlocks("/f");
  ASSERT_TRUE(blocks.ok());
  ASSERT_EQ(blocks->size(), 20u);
  for (const BlockInfo& b : *blocks) {
    ASSERT_EQ(b.replicas.size(), 2u);
    EXPECT_NE(b.replicas[0].node, b.replicas[1].node);
    EXPECT_EQ(b.num_rows, 5u);
    EXPECT_EQ(b.byte_size, 100u);
    // Every replica is actually fetchable from its DataNode.
    for (const ReplicaLocation& r : b.replicas) {
      EXPECT_TRUE(ptrs_[r.node]->Fetch(b.block_id).ok());
    }
  }
}

TEST_F(NameNodeTest, PrimariesSpreadEvenly) {
  NameNode nn(ptrs_, 2);
  ASSERT_TRUE(nn.CreateFile("/f").ok());
  for (int b = 0; b < 40; ++b) {
    ASSERT_TRUE(nn.AppendBlock("/f", TextBlock(10, 1)).ok());
  }
  std::vector<int> primaries(4, 0);
  const auto blocks = nn.GetBlocks("/f");
  ASSERT_TRUE(blocks.ok());
  for (const BlockInfo& b : *blocks) {
    primaries[b.replicas[0].node]++;
  }
  for (int c : primaries) EXPECT_EQ(c, 10);
}

TEST_F(NameNodeTest, ReplicationClampedToClusterSize) {
  NameNode nn(ptrs_, 10);  // more replicas than nodes
  ASSERT_TRUE(nn.CreateFile("/f").ok());
  ASSERT_TRUE(nn.AppendBlock("/f", TextBlock(10, 1)).ok());
  EXPECT_EQ((*nn.GetBlocks("/f"))[0].replicas.size(), 4u);
}

TEST_F(NameNodeTest, FileSizeSumsBlocks) {
  NameNode nn(ptrs_, 1);
  ASSERT_TRUE(nn.CreateFile("/f").ok());
  ASSERT_TRUE(nn.AppendBlock("/f", TextBlock(100, 1)).ok());
  ASSERT_TRUE(nn.AppendBlock("/f", TextBlock(250, 1)).ok());
  EXPECT_EQ(nn.FileSize("/f").value(), 350u);
}

// ------------------------------- HCatalog ---------------------------------

TEST(HCatalogTest, RegisterLookupDrop) {
  HCatalog catalog;
  HdfsTableMeta meta;
  meta.name = "L";
  meta.path = "/warehouse/L";
  meta.schema = Schema::Make({{"k", DataType::kInt32}});
  meta.format = HdfsFormat::kText;
  meta.num_rows = 7;
  ASSERT_TRUE(catalog.RegisterTable(meta).ok());
  EXPECT_EQ(catalog.RegisterTable(meta).code(),
              StatusCode::kAlreadyExists);
  auto found = catalog.Lookup("L");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->path, "/warehouse/L");
  EXPECT_EQ(found->num_rows, 7u);
  EXPECT_EQ(catalog.ListTables(), std::vector<std::string>{"L"});
  ASSERT_TRUE(catalog.DropTable("L").ok());
  EXPECT_FALSE(catalog.Lookup("L").ok());
}

TEST(HCatalogTest, RejectsInvalidMeta) {
  HCatalog catalog;
  HdfsTableMeta no_name;
  no_name.schema = Schema::Make({{"k", DataType::kInt32}});
  EXPECT_FALSE(catalog.RegisterTable(no_name).ok());
  HdfsTableMeta no_schema;
  no_schema.name = "x";
  EXPECT_FALSE(catalog.RegisterTable(no_schema).ok());
}

// ------------------------------ TableWriter -------------------------------

class TableWriterTest : public NameNodeTest {};

TEST_F(TableWriterTest, WritesBlocksAndRegisters) {
  NameNode nn(ptrs_, 2);
  HCatalog catalog;
  auto schema =
      Schema::Make({{"k", DataType::kInt32}, {"s", DataType::kString}});
  HdfsWriteOptions options;
  options.format = HdfsFormat::kColumnar;
  options.rows_per_block = 100;
  HdfsTableWriter writer(&nn, &catalog, "L", schema, options);
  ASSERT_TRUE(writer.Open().ok());
  RecordBatch batch(schema);
  for (int i = 0; i < 450; ++i) {
    batch.AppendRow({Value(int32_t{i}), Value("s" + std::to_string(i))});
  }
  ASSERT_TRUE(writer.Append(batch).ok());
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_EQ(writer.rows_written(), 450u);

  auto meta = catalog.Lookup("L");
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->num_rows, 450u);
  auto blocks = nn.GetBlocks(meta->path);
  ASSERT_TRUE(blocks.ok());
  ASSERT_EQ(blocks->size(), 5u);  // 4 x 100 + 1 x 50
  EXPECT_EQ((*blocks)[4].num_rows, 50u);

  // The stored blocks decode back to the original rows.
  auto stored = ptrs_[(*blocks)[0].replicas[0].node]->Fetch(
      (*blocks)[0].block_id);
  ASSERT_TRUE(stored.ok());
  auto decoded = DecodeColumnarBlock(*(*stored)->columnar, schema, {0, 1});
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->column(0).i32()[99], 99);
}

TEST_F(TableWriterTest, SchemaMismatchRejected) {
  NameNode nn(ptrs_, 1);
  HCatalog catalog;
  auto schema = Schema::Make({{"k", DataType::kInt32}});
  HdfsTableWriter writer(&nn, &catalog, "L", schema, HdfsWriteOptions{});
  ASSERT_TRUE(writer.Open().ok());
  RecordBatch wrong(Schema::Make({{"z", DataType::kString}}));
  wrong.AppendRow({Value("x")});
  EXPECT_FALSE(writer.Append(wrong).ok());
}

TEST_F(TableWriterTest, LifecycleErrors) {
  NameNode nn(ptrs_, 1);
  HCatalog catalog;
  auto schema = Schema::Make({{"k", DataType::kInt32}});
  HdfsTableWriter writer(&nn, &catalog, "L", schema, HdfsWriteOptions{});
  RecordBatch batch(schema);
  EXPECT_FALSE(writer.Append(batch).ok());  // not open
  ASSERT_TRUE(writer.Open().ok());
  EXPECT_FALSE(writer.Open().ok());  // double open
  ASSERT_TRUE(writer.Close().ok());
  EXPECT_FALSE(writer.Append(batch).ok());  // closed
}

}  // namespace
}  // namespace hybridjoin
