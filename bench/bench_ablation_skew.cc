// Ablation — skew-aware shuffle: a Zipf sweep of the Bloom-repartition
// join with the hybrid hot-key route on vs off. Under key skew the agreed
// hash sends every row of a hot key to one JEN worker, so that worker's
// probe work grows with the skew while the others idle; the hybrid route
// (hot build rows broadcast, hot probe rows kept local, cold keys
// repartitioned) spreads the hot key's work across the cluster. The sweep
// measures the wall-clock win and the per-worker wall skew (max/median) at
// s in {0, 0.8, 1.0, 1.2}; every hybrid-on run is compared byte-for-byte
// against its hybrid-off twin, so the sweep doubles as a correctness
// harness and the bench exits 1 on any mismatch.
//
// Writes BENCH_skew.json (path overridable with --out=PATH) in the same
// perfcheck-gateable shape as the other bench artifacts.

#include "bench_common.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "testing/differential.h"

using namespace hybridjoin;
using namespace hybridjoin::bench;

namespace {

struct SweepPoint {
  std::string name;    ///< perfcheck array key, e.g. "s_1_2_hybrid_on"
  double zipf_s = 0;
  bool hybrid = true;
  double wall_seconds = 0;
  int64_t worker_wall_max_us = 0;
  int64_t worker_wall_median_us = 0;
  double worker_wall_skew = 0;  ///< max/median over the JEN workers
  int64_t hot_keys = 0;
  int64_t broadcast_bytes = 0;
  int64_t hot_rows_build = 0;
  int64_t hot_rows_probe = 0;
  size_t rows = 0;
  bool match = true;  ///< byte-for-byte equal to the hybrid-off twin
  std::unique_ptr<RecordBatch> batch;
};

/// Max/median wall over the JEN workers ("hdfs:<i>" nodes): the probe-side
/// straggler the hybrid route is supposed to flatten.
void JenWallStats(const obs::QueryProfile& profile, SweepPoint* out) {
  std::vector<int64_t> walls;
  for (const auto& [node, us] : profile.worker_wall_us) {
    if (node.rfind("hdfs:", 0) == 0) walls.push_back(us);
  }
  if (walls.empty()) return;
  std::sort(walls.begin(), walls.end());
  out->worker_wall_max_us = walls.back();
  const size_t n = walls.size();
  out->worker_wall_median_us =
      (n % 2 == 1) ? walls[n / 2] : (walls[n / 2 - 1] + walls[n / 2]) / 2;
  if (out->worker_wall_median_us > 0) {
    out->worker_wall_skew = static_cast<double>(out->worker_wall_max_us) /
                            static_cast<double>(out->worker_wall_median_us);
  }
}

int WriteJson(const std::string& path, const std::vector<SweepPoint>& sweep) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"skew\": {\n    \"sweep\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    std::fprintf(
        f,
        "      {\"name\": \"%s\", \"zipf_s\": %.2f, \"hybrid\": %d, "
        "\"wall_seconds\": %.6f, \"worker_wall_max_us\": %lld, "
        "\"worker_wall_median_us\": %lld, \"worker_wall_skew\": %.4f, "
        "\"hot_keys\": %lld, \"broadcast_bytes\": %lld, "
        "\"hot_rows_build\": %lld, \"hot_rows_probe\": %lld, "
        "\"rows\": %zu, \"match\": %d}%s\n",
        p.name.c_str(), p.zipf_s, p.hybrid ? 1 : 0, p.wall_seconds,
        static_cast<long long>(p.worker_wall_max_us),
        static_cast<long long>(p.worker_wall_median_us), p.worker_wall_skew,
        static_cast<long long>(p.hot_keys),
        static_cast<long long>(p.broadcast_bytes),
        static_cast<long long>(p.hot_rows_build),
        static_cast<long long>(p.hot_rows_probe), p.rows, p.match ? 1 : 0,
        i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

std::string PointName(double s, bool hybrid) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "s_%.1f_hybrid_%s", s,
                hybrid ? "on" : "off");
  for (char& c : buf) {
    if (c == '.') c = '_';
  }
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_skew.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  BenchConfig config = BenchConfig::FromEnv();
  // A slim build side and a fat probe side: with Zipf on BOTH tables the
  // join output grows as t_hot x l_hot, and an output explosion — identical
  // with the route on or off — would drown the shuffle straggler this
  // ablation isolates. The probe side is what the route rebalances, so only
  // it needs scale.
  config.workload.t_rows = std::min<uint64_t>(config.workload.t_rows, 1024);
  config.workload.l_rows =
      std::min<uint64_t>(config.workload.l_rows, 96 * 1024);
  config.workload.num_join_keys =
      std::min<uint32_t>(config.workload.num_join_keys, 2048);
  // A wide JEN fleet makes the fair share small, which is exactly when the
  // agreed-hash straggler hurts most (and when the hot-set threshold
  // promotes more than a single key).
  config.jen_workers = std::max<uint32_t>(config.jen_workers, 8);
  PrintPreamble("Ablation: skew-aware shuffle",
                "repartition_bloom under Zipf key skew, hybrid hot-key "
                "route on vs off (s in {0, 0.8, 1.0, 1.2})",
                config);

  // Full key windows (st = sl = 1) so the hot keys participate in the join
  // regardless of where their key-hash lands — selectivity comes from the
  // independent predicates only. Under skew the join's output concentrates
  // quadratically on the hot keys, which is exactly the probe straggler the
  // hybrid route splits.
  const SelectivitySpec spec{0.5, 0.5, 1.0, 1.0};

  constexpr double kZipf[] = {0.0, 0.8, 1.0, 1.2};

  // One (s, hybrid) sweep point: fresh warehouse, warm run discarded, best
  // of the measured runs.
  auto run_point = [&](const Workload& workload, double s, bool hybrid,
                       SweepPoint* out) -> bool {
    SimulationConfig sim = MakeSimConfig(config);
    // This ablation isolates the JEN-side shuffle straggler. Under the
    // paper's deliberately under-provisioned DPF ingest NIC the DB→JEN
    // transfer dominates every configuration and would mask it, so the DB
    // workers get a fast NIC here — and the JEN NICs are throttled so the
    // agreed-hash shuffle (where the hot key concentrates its bytes on one
    // receiver) is the bottleneck the sweep measures.
    sim.net.db_nic_bps = 12 * 1024 * 1024;
    sim.net.hdfs_nic_bps = 512 * 1024;
    sim.skew.enabled = hybrid;
    HybridWarehouse hw(sim);
    LoadOptions load;
    // Small blocks so every JEN worker holds a slice of the probe table.
    // With 32k-row blocks the whole table fits in two blocks, two workers
    // own all the locally-kept hot rows, and the route would trade a
    // network straggler for a CPU one.
    load.hdfs.rows_per_block = 2 * 1024;
    if (!LoadWorkload(&hw, workload, load).ok()) return false;
    const HybridQuery query = workload.MakeQuery();
    if (!hw.Execute(query, JoinAlgorithm::kRepartitionBloom).ok()) {
      return false;
    }
    const int runs = std::max(config.repeats, 2);
    double best = 1e100;
    ExecutionReport report;
    RecordBatch rows;
    for (int i = 0; i < runs; ++i) {
      auto result = hw.Execute(query, JoinAlgorithm::kRepartitionBloom);
      if (!result.ok()) {
        std::fprintf(stderr, "run failed (s=%.1f hybrid=%d): %s\n", s,
                     hybrid ? 1 : 0, result.status().ToString().c_str());
        return false;
      }
      if (result->report.wall_seconds < best) {
        best = result->report.wall_seconds;
        report = result->report;
      }
      rows = result->rows;
    }
    out->name = PointName(s, hybrid);
    out->zipf_s = s;
    out->hybrid = hybrid;
    out->wall_seconds = best;
    JenWallStats(report.profile, out);
    // Gauges/counters from the profile's per-query view (the report's
    // whole-context delta spans the warm-up run too).
    for (const auto* m :
         {metric::kShuffleHotKeys, metric::kShuffleBroadcastBytes,
          metric::kShuffleHotRowsBuild, metric::kShuffleHotRowsProbe}) {
      const auto* row = report.profile.FindCounter("shuffle", m);
      const int64_t v = row != nullptr ? row->total : 0;
      if (m == metric::kShuffleHotKeys) out->hot_keys = v;
      if (m == metric::kShuffleBroadcastBytes) out->broadcast_bytes = v;
      if (m == metric::kShuffleHotRowsBuild) out->hot_rows_build = v;
      if (m == metric::kShuffleHotRowsProbe) out->hot_rows_probe = v;
    }
    out->rows = rows.num_rows();
    out->batch = std::make_unique<RecordBatch>(std::move(rows));
    return true;
  };

  std::vector<SweepPoint> sweep;
  bool all_match = true;
  for (const double s : kZipf) {
    WorkloadConfig wc = config.workload;
    wc.zipf_s = s;
    auto workload = Workload::Generate(wc, spec);
    if (!workload.ok()) {
      std::fprintf(stderr, "workload generation failed: %s\n",
                   workload.status().ToString().c_str());
      return 1;
    }
    SweepPoint off;
    SweepPoint on;
    if (!run_point(*workload, s, /*hybrid=*/false, &off)) return 1;
    if (!run_point(*workload, s, /*hybrid=*/true, &on)) return 1;
    auto diff = testing_support::CompareBatches(*off.batch, *on.batch);
    on.match = !diff.has_value();
    if (!on.match) {
      all_match = false;
      std::fprintf(stderr, "MISMATCH at s=%.1f: %s\n", s, diff->c_str());
    }
    sweep.push_back(std::move(off));
    sweep.push_back(std::move(on));
  }

  std::printf("%18s %10s %12s %12s %8s %6s %10s %10s %6s\n", "point",
              "wall(s)", "max wall(s)", "med wall(s)", "skew", "hot",
              "bcast KiB", "kept rows", "match");
  for (const SweepPoint& p : sweep) {
    std::printf("%18s %10.3f %12.3f %12.3f %7.2fx %6lld %10.1f %10lld %6s\n",
                p.name.c_str(), p.wall_seconds, p.worker_wall_max_us / 1e6,
                p.worker_wall_median_us / 1e6, p.worker_wall_skew,
                static_cast<long long>(p.hot_keys),
                p.broadcast_bytes / 1024.0,
                static_cast<long long>(p.hot_rows_probe),
                p.match ? "ok" : "MISMATCH");
  }

  // sweep layout: [s0_off, s0_on, s08_off, s08_on, s10_off, s10_on,
  //                s12_off, s12_on]
  const SweepPoint& s0_off = sweep[0];
  const SweepPoint& s0_on = sweep[1];
  const SweepPoint& s12_off = sweep[sweep.size() - 2];
  const SweepPoint& s12_on = sweep.back();
  ShapeCheck("uniform workload picks no hot keys",
             s0_on.hot_keys == 0 && s0_on.broadcast_bytes == 0);
  ShapeCheck("uniform wall regression stays within noise (<= 15%)",
             s0_on.wall_seconds <= s0_off.wall_seconds * 1.15);
  ShapeCheck("s=1.2 engages the hot route", s12_on.hot_keys > 0);
  ShapeCheck("s=1.2 hybrid wins >= 1.5x wall",
             s12_on.wall_seconds * 1.5 <= s12_off.wall_seconds);
  ShapeCheck("s=1.2 hybrid flattens the worker-wall skew",
             s12_on.worker_wall_skew < s12_off.worker_wall_skew);
  ShapeCheck("every hybrid run matches its hybrid-off twin", all_match);

  const int json_rc = WriteJson(out_path, sweep);
  if (json_rc != 0) return json_rc;
  return all_match ? 0 : 1;
}
