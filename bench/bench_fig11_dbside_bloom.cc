// Figure 11 — "DB-side joins: execution time (sec)" (with vs without the
// Bloom filter).
//   (a) sigma_T = 0.05, S_L' = 0.05;  (b) sigma_T = 0.1, S_L' = 0.1.
// sigma_L in {0.001, 0.01, 0.1, 0.2}.
//
// Paper's shape: the Bloom filter helps more and more as sigma_L grows
// (there is more non-joinable HDFS data to prune); for very selective
// sigma_L (<= 0.001) the filter's overhead can cancel its benefit.

#include "bench_common.h"

using namespace hybridjoin;
using namespace hybridjoin::bench;

namespace {

void RunSubfigure(const BenchConfig& config, const char* label,
                  double sigma_t, double sl) {
  std::printf("\n--- Figure 11(%s): sigma_T=%.2f, S_L'=%.2f ---\n", label,
              sigma_t, sl);
  std::printf("%8s %8s %10s %16s %16s\n", "sigma_L", "db(s)", "db(BF)(s)",
              "L tuples -> DB", "w/ BF -> DB");
  std::vector<double> benefit;  // db / db(BF)
  for (double sigma_l : {0.001, 0.01, 0.1, 0.2}) {
    const SelectivitySpec spec{sigma_t, sigma_l, 0.5, sl};
    auto cell = BenchCell::Create(config, spec, HdfsFormat::kColumnar);
    if (cell == nullptr) continue;
    ExecutionReport plain_report;
    ExecutionReport bf_report;
    const double plain = cell->Run(JoinAlgorithm::kDbSide, &plain_report);
    const double bf = cell->Run(JoinAlgorithm::kDbSideBloom, &bf_report);
    std::printf("%8.3f %8.3f %10.3f %16lld %16lld\n", sigma_l, plain, bf,
                static_cast<long long>(
                    plain_report.Counter(metric::kHdfsTuplesSentToDb)),
                static_cast<long long>(
                    bf_report.Counter(metric::kHdfsTuplesSentToDb)));
    benefit.push_back(plain / bf);
  }
  ShapeCheck("BF benefit grows with sigma_L",
             benefit.size() >= 2 && benefit.back() > benefit.front());
  ShapeCheck("BF clearly wins at sigma_L = 0.2",
             !benefit.empty() && benefit.back() > 1.1);
}

}  // namespace

int main() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintPreamble("Figure 11", "DB-side join with vs without Bloom filter",
                config);
  RunSubfigure(config, "a", 0.05, 0.05);
  RunSubfigure(config, "b", 0.1, 0.1);
  return 0;
}
