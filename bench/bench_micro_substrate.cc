// Micro-benchmarks (google-benchmark) for the substrate components whose
// costs drive the macro results: Bloom filter ops, the LZ codec, text
// parsing vs columnar decoding, hash-table build/probe, and batch serde.
//
// Besides the google-benchmark suite, main() first runs fixed before/after
// comparisons of the batched cache-conscious kernels against their scalar
// baselines and writes them to BENCH_kernels.json (path overridable with
// --kernels_out=FILE); CI uploads that file as the perf-trend artifact.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>

#include "bloom/bloom_filter.h"
#include "common/compress.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "exec/join_hash_table.h"
#include "hdfs/format.h"

namespace hybridjoin {
namespace {

void BM_BloomAdd(benchmark::State& state) {
  BloomFilter bloom(BloomParams::ForKeys(1 << 16));
  int64_t key = 0;
  for (auto _ : state) {
    bloom.Add(key++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomAdd);

void BM_BloomMayContain(benchmark::State& state) {
  BloomFilter bloom(BloomParams::ForKeys(1 << 16));
  for (int64_t k = 0; k < (1 << 16); k += 2) bloom.Add(k);
  int64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bloom.MayContain(key++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomMayContain);

void BM_BloomUnion(benchmark::State& state) {
  BloomFilter a(BloomParams::ForKeys(1 << 16));
  BloomFilter b(BloomParams::ForKeys(1 << 16));
  for (int64_t k = 0; k < 1000; ++k) b.Add(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.UnionWith(b));
  }
  state.SetBytesProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_BloomUnion);

std::vector<uint8_t> LogLikeBytes(size_t n) {
  Rng rng(1);
  std::string s;
  while (s.size() < n) {
    s += "g" + std::to_string(rng.Uniform(200)) + "/products/item" +
         std::to_string(rng.Uniform(100000)) + "|";
  }
  return std::vector<uint8_t>(s.begin(), s.begin() + n);
}

void BM_LzCompress(benchmark::State& state) {
  const auto input = LogLikeBytes(1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LzCompress(input));
  }
  state.SetBytesProcessed(state.iterations() * input.size());
}
BENCHMARK(BM_LzCompress);

void BM_LzDecompress(benchmark::State& state) {
  const auto compressed = LzCompress(LogLikeBytes(1 << 20));
  for (auto _ : state) {
    benchmark::DoNotOptimize(LzDecompress(compressed));
  }
  state.SetBytesProcessed(state.iterations() * (1 << 20));
}
BENCHMARK(BM_LzDecompress);

RecordBatch LogBatch(size_t rows) {
  auto schema = Schema::Make({{"joinKey", DataType::kInt32},
                              {"pred", DataType::kInt32},
                              {"date", DataType::kDate},
                              {"grp", DataType::kString}});
  RecordBatch b(schema);
  Rng rng(2);
  for (size_t i = 0; i < rows; ++i) {
    b.AppendRow({Value(static_cast<int32_t>(rng.Uniform(10000))),
                 Value(static_cast<int32_t>(rng.Uniform(1000000))),
                 Value(static_cast<int32_t>(16000 + rng.Uniform(30))),
                 Value("g" + std::to_string(rng.Uniform(200)) + "/item" +
                       std::to_string(rng.Uniform(100000)))});
  }
  return b;
}

void BM_TextParse(benchmark::State& state) {
  RecordBatch batch = LogBatch(10000);
  const auto text = EncodeText(batch);
  const std::vector<size_t> all = {0, 1, 2, 3};
  for (auto _ : state) {
    auto decoded = DecodeText(text.data(), text.size(), batch.schema(), all);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_TextParse);

void BM_ColumnarDecode(benchmark::State& state) {
  RecordBatch batch = LogBatch(10000);
  const auto block = EncodeColumnarBlock(batch, ColumnarWriteOptions{});
  const std::vector<size_t> all = {0, 1, 2, 3};
  for (auto _ : state) {
    auto decoded = DecodeColumnarBlock(block, batch.schema(), all);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(state.iterations() * block.ByteSize());
}
BENCHMARK(BM_ColumnarDecode);

void BM_ColumnarDecodeProjected(benchmark::State& state) {
  RecordBatch batch = LogBatch(10000);
  const auto block = EncodeColumnarBlock(batch, ColumnarWriteOptions{});
  const std::vector<size_t> narrow = {0};
  for (auto _ : state) {
    auto decoded = DecodeColumnarBlock(block, batch.schema(), narrow);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_ColumnarDecodeProjected);

void BM_HashTableBuild(benchmark::State& state) {
  RecordBatch batch = LogBatch(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    JoinHashTable table(0);
    RecordBatch copy = batch;
    benchmark::DoNotOptimize(table.AddBatch(std::move(copy)));
    table.Finalize();
    benchmark::DoNotOptimize(table.num_rows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashTableBuild)->Arg(10000)->Arg(100000);

void BM_HashTableProbe(benchmark::State& state) {
  RecordBatch batch = LogBatch(100000);
  JoinHashTable table(0);
  {
    RecordBatch copy = batch;
    (void)table.AddBatch(std::move(copy));
  }
  table.Finalize();
  int32_t key = 0;
  for (auto _ : state) {
    int64_t count = 0;
    table.ForEachMatch(key++ % 10000, [&](uint32_t, uint32_t) { ++count; });
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashTableProbe);

void BM_BloomAddBatchedBlocked(benchmark::State& state) {
  const auto params =
      BloomParams::ForKeys(1 << 16, 8.0, 2, BloomLayout::kBlocked);
  Rng rng(3);
  std::vector<int64_t> keys(4096);
  for (auto& k : keys) k = static_cast<int64_t>(rng.Uniform(1u << 20));
  for (auto _ : state) {
    BloomFilter bloom(params);
    bloom.AddKeys(std::span<const int64_t>(keys));
    benchmark::DoNotOptimize(bloom.FillRatio());
  }
  state.SetItemsProcessed(state.iterations() * keys.size());
}
BENCHMARK(BM_BloomAddBatchedBlocked);

void BM_BloomMayContainBatchedBlocked(benchmark::State& state) {
  BloomFilter bloom(
      BloomParams::ForKeys(1 << 16, 8.0, 2, BloomLayout::kBlocked));
  for (int64_t k = 0; k < (1 << 16); k += 2) bloom.Add(k);
  Rng rng(4);
  std::vector<int64_t> keys(4096);
  for (auto& k : keys) k = static_cast<int64_t>(rng.Uniform(1u << 17));
  std::vector<uint32_t> sel;
  for (auto _ : state) {
    sel.resize(keys.size());
    std::iota(sel.begin(), sel.end(), 0u);
    bloom.MayContainKeys(std::span<const int64_t>(keys), &sel);
    benchmark::DoNotOptimize(sel.size());
  }
  state.SetItemsProcessed(state.iterations() * keys.size());
}
BENCHMARK(BM_BloomMayContainBatchedBlocked);

void BM_HashTableProbeBatch(benchmark::State& state) {
  RecordBatch batch = LogBatch(100000);
  JoinHashTable table(0);
  {
    RecordBatch copy = batch;
    (void)table.AddBatch(std::move(copy));
  }
  table.Finalize();
  std::vector<int32_t> keys(4096);
  Rng rng(5);
  for (auto& k : keys) k = static_cast<int32_t>(rng.Uniform(10000));
  std::vector<JoinMatch> matches;
  for (auto _ : state) {
    matches.clear();
    table.ProbeBatch(std::span<const int32_t>(keys), &matches);
    benchmark::DoNotOptimize(matches.size());
  }
  state.SetItemsProcessed(state.iterations() * keys.size());
}
BENCHMARK(BM_HashTableProbeBatch);

void BM_BatchSerde(benchmark::State& state) {
  RecordBatch batch = LogBatch(10000);
  for (auto _ : state) {
    auto bytes = batch.Serialize();
    auto decoded = RecordBatch::Deserialize(bytes, batch.schema());
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(state.iterations() * batch.ByteSize());
}
BENCHMARK(BM_BatchSerde);

// ------------------- kernel before/after comparisons -----------------------
// Fixed scalar-vs-batched measurements at a working-set size that exceeds L2
// (a 4 MB filter / 1M-row hash table), reported as BENCH_kernels.json. The
// scalar baselines run the exact pre-batching code path (classic layout,
// per-row ForEachMatch + AppendRowFrom); the candidates run what the join
// drivers now execute (blocked layout, AddKeys/MayContainKeys, ProbeBatch +
// columnar gather).

struct KernelResult {
  std::string name;
  size_t keys;
  double baseline_mkeys;
  double candidate_mkeys;
  double speedup() const { return candidate_mkeys / baseline_mkeys; }
};

template <typename Fn>
double BestSeconds(int reps, Fn&& fn) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    Stopwatch sw;
    fn();
    best = std::min(best, sw.ElapsedSeconds());
  }
  return best;
}

// The Bloom kernels are measured on a filter sized for 64M distinct keys
// (64 MB at the paper's 8 bits/key) — far past L2 and the STLB reach, which
// is the regime the prefetch pipeline targets and roughly the paper's 16M-
// key operating point times the fan-in a combined global filter sees.
constexpr size_t kBloomFilterKeys = 64ull << 20;
constexpr size_t kBloomOpKeys = 8ull << 20;

KernelResult CompareBloomAdd() {
  Rng rng(101);
  std::vector<int64_t> keys(kBloomOpKeys);
  for (auto& k : keys) k = static_cast<int64_t>(rng.Next());
  const auto classic = BloomParams::ForKeys(kBloomFilterKeys);
  const auto blocked =
      BloomParams::ForKeys(kBloomFilterKeys, 8.0, 2, BloomLayout::kBlocked);

  const double base = BestSeconds(3, [&] {
    BloomFilter bloom(classic);
    for (int64_t k : keys) bloom.Add(k);
    benchmark::DoNotOptimize(bloom.FillRatio());
  });
  const double cand = BestSeconds(3, [&] {
    BloomFilter bloom(blocked);
    bloom.AddKeys(std::span<const int64_t>(keys));
    benchmark::DoNotOptimize(bloom.FillRatio());
  });
  return {"bloom_add", kBloomOpKeys, kBloomOpKeys / base / 1e6,
          kBloomOpKeys / cand / 1e6};
}

KernelResult CompareBloomProbe() {
  Rng rng(102);
  BloomFilter classic(BloomParams::ForKeys(kBloomFilterKeys));
  BloomFilter blocked(
      BloomParams::ForKeys(kBloomFilterKeys, 8.0, 2, BloomLayout::kBlocked));
  // Fill both to the design point (n = expected keys) in streamed chunks.
  std::vector<int64_t> chunk(kBloomOpKeys);
  for (size_t done = 0; done < kBloomFilterKeys; done += chunk.size()) {
    for (auto& k : chunk) {
      k = static_cast<int64_t>(rng.Uniform(2 * kBloomFilterKeys));
    }
    classic.AddKeys(std::span<const int64_t>(chunk));
    blocked.AddKeys(std::span<const int64_t>(chunk));
  }
  std::vector<int64_t> probe(kBloomOpKeys);
  for (auto& k : probe) {
    k = static_cast<int64_t>(rng.Uniform(4 * kBloomFilterKeys));
  }

  const double base = BestSeconds(3, [&] {
    size_t hits = 0;
    for (int64_t k : probe) hits += classic.MayContain(k);
    benchmark::DoNotOptimize(hits);
  });
  std::vector<uint32_t> sel;
  const double cand = BestSeconds(3, [&] {
    sel.resize(probe.size());
    std::iota(sel.begin(), sel.end(), 0u);
    blocked.MayContainKeys(std::span<const int64_t>(probe), &sel);
    benchmark::DoNotOptimize(sel.size());
  });
  return {"bloom_probe", kBloomOpKeys, kBloomOpKeys / base / 1e6,
          kBloomOpKeys / cand / 1e6};
}

KernelResult CompareHtProbeMaterialize() {
  // One 1M-row build batch (int64 key + two numeric payloads), 2M probe
  // keys at ~50% hit rate, materialized in 4096-row output chunks the way
  // JoinProber does.
  constexpr size_t kBuildRows = 1 << 20;
  constexpr size_t kProbeKeys = 2 << 20;
  constexpr size_t kChunk = 4096;
  auto schema = Schema::Make({{"k", DataType::kInt64},
                              {"p1", DataType::kInt64},
                              {"p2", DataType::kFloat64}});
  RecordBatch build(schema);
  {
    Rng rng(103);
    auto& k = build.mutable_column(0);
    auto& p1 = build.mutable_column(1);
    auto& p2 = build.mutable_column(2);
    for (size_t i = 0; i < kBuildRows; ++i) {
      k.AppendValue(Value(static_cast<int64_t>(rng.Uniform(kBuildRows))));
      p1.AppendValue(Value(static_cast<int64_t>(i)));
      p2.AppendValue(Value(static_cast<double>(i) * 0.5));
    }
  }
  JoinHashTable table(0);
  {
    RecordBatch copy = build;
    (void)table.AddBatch(std::move(copy));
  }
  table.Finalize();
  const RecordBatch& stored = table.batches()[0];

  Rng rng(104);
  std::vector<int64_t> probe(kProbeKeys);
  for (auto& k : probe) k = static_cast<int64_t>(rng.Uniform(2 * kBuildRows));

  size_t base_rows = 0;
  const double base = BestSeconds(3, [&] {
    base_rows = 0;
    RecordBatch out(schema);
    for (size_t i = 0; i < probe.size(); ++i) {
      table.ForEachMatch(probe[i], [&](uint32_t b, uint32_t r) {
        out.AppendRowFrom(table.batches()[b], r);
      });
      if (out.num_rows() >= kChunk) {
        base_rows += out.num_rows();
        benchmark::DoNotOptimize(out.num_rows());
        out = RecordBatch(schema);
      }
    }
    base_rows += out.num_rows();
  });

  size_t cand_rows = 0;
  std::vector<JoinMatch> matches;
  std::vector<uint32_t> rows;
  const double cand = BestSeconds(3, [&] {
    cand_rows = 0;
    RecordBatch out(schema);
    for (size_t pos = 0; pos < probe.size(); pos += kChunk) {
      const size_t n = std::min(kChunk, probe.size() - pos);
      matches.clear();
      table.ProbeBatch(std::span<const int64_t>(probe.data() + pos, n),
                       &matches);
      rows.resize(matches.size());
      for (size_t j = 0; j < matches.size(); ++j) rows[j] = matches[j].row;
      for (size_t c = 0; c < out.num_columns(); ++c) {
        out.mutable_column(c).GatherAppendFrom(stored.column(c), rows.data(),
                                               rows.size());
      }
      if (out.num_rows() >= kChunk) {
        cand_rows += out.num_rows();
        benchmark::DoNotOptimize(out.num_rows());
        out = RecordBatch(schema);
      }
    }
    cand_rows += out.num_rows();
  });
  HJ_CHECK_EQ(base_rows, cand_rows);  // both paths materialize every match
  return {"ht_probe_materialize", kProbeKeys, kProbeKeys / base / 1e6,
          kProbeKeys / cand / 1e6};
}

int RunKernelComparisons(const std::string& out_path) {
  std::vector<KernelResult> results;
  results.push_back(CompareBloomAdd());
  results.push_back(CompareBloomProbe());
  results.push_back(CompareHtProbeMaterialize());

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"kernels\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const KernelResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"keys\": %zu, "
                 "\"baseline_mkeys_per_s\": %.2f, "
                 "\"candidate_mkeys_per_s\": %.2f, \"speedup\": %.2f}%s\n",
                 r.name.c_str(), r.keys, r.baseline_mkeys, r.candidate_mkeys,
                 r.speedup(), i + 1 < results.size() ? "," : "");
    std::printf("%-22s %8zu keys  scalar %8.2f Mkeys/s  batched %8.2f "
                "Mkeys/s  speedup %.2fx\n",
                r.name.c_str(), r.keys, r.baseline_mkeys, r.candidate_mkeys,
                r.speedup());
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace hybridjoin

int main(int argc, char** argv) {
  std::string kernels_out = "BENCH_kernels.json";
  bool kernels_only = false;
  std::vector<char*> rest = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--kernels_out=", 14) == 0) {
      kernels_out = argv[i] + 14;
    } else if (std::strcmp(argv[i], "--kernels_only") == 0) {
      kernels_only = true;
    } else {
      rest.push_back(argv[i]);
    }
  }
  if (int rc = hybridjoin::RunKernelComparisons(kernels_out); rc != 0) {
    return rc;
  }
  if (kernels_only) return 0;
  int rest_argc = static_cast<int>(rest.size());
  benchmark::Initialize(&rest_argc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
