// Micro-benchmarks (google-benchmark) for the substrate components whose
// costs drive the macro results: Bloom filter ops, the LZ codec, text
// parsing vs columnar decoding, hash-table build/probe, and batch serde.

#include <benchmark/benchmark.h>

#include "bloom/bloom_filter.h"
#include "common/compress.h"
#include "common/random.h"
#include "exec/join_hash_table.h"
#include "hdfs/format.h"

namespace hybridjoin {
namespace {

void BM_BloomAdd(benchmark::State& state) {
  BloomFilter bloom(BloomParams::ForKeys(1 << 16));
  int64_t key = 0;
  for (auto _ : state) {
    bloom.Add(key++);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomAdd);

void BM_BloomMayContain(benchmark::State& state) {
  BloomFilter bloom(BloomParams::ForKeys(1 << 16));
  for (int64_t k = 0; k < (1 << 16); k += 2) bloom.Add(k);
  int64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bloom.MayContain(key++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomMayContain);

void BM_BloomUnion(benchmark::State& state) {
  BloomFilter a(BloomParams::ForKeys(1 << 16));
  BloomFilter b(BloomParams::ForKeys(1 << 16));
  for (int64_t k = 0; k < 1000; ++k) b.Add(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.UnionWith(b));
  }
  state.SetBytesProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_BloomUnion);

std::vector<uint8_t> LogLikeBytes(size_t n) {
  Rng rng(1);
  std::string s;
  while (s.size() < n) {
    s += "g" + std::to_string(rng.Uniform(200)) + "/products/item" +
         std::to_string(rng.Uniform(100000)) + "|";
  }
  return std::vector<uint8_t>(s.begin(), s.begin() + n);
}

void BM_LzCompress(benchmark::State& state) {
  const auto input = LogLikeBytes(1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LzCompress(input));
  }
  state.SetBytesProcessed(state.iterations() * input.size());
}
BENCHMARK(BM_LzCompress);

void BM_LzDecompress(benchmark::State& state) {
  const auto compressed = LzCompress(LogLikeBytes(1 << 20));
  for (auto _ : state) {
    benchmark::DoNotOptimize(LzDecompress(compressed));
  }
  state.SetBytesProcessed(state.iterations() * (1 << 20));
}
BENCHMARK(BM_LzDecompress);

RecordBatch LogBatch(size_t rows) {
  auto schema = Schema::Make({{"joinKey", DataType::kInt32},
                              {"pred", DataType::kInt32},
                              {"date", DataType::kDate},
                              {"grp", DataType::kString}});
  RecordBatch b(schema);
  Rng rng(2);
  for (size_t i = 0; i < rows; ++i) {
    b.AppendRow({Value(static_cast<int32_t>(rng.Uniform(10000))),
                 Value(static_cast<int32_t>(rng.Uniform(1000000))),
                 Value(static_cast<int32_t>(16000 + rng.Uniform(30))),
                 Value("g" + std::to_string(rng.Uniform(200)) + "/item" +
                       std::to_string(rng.Uniform(100000)))});
  }
  return b;
}

void BM_TextParse(benchmark::State& state) {
  RecordBatch batch = LogBatch(10000);
  const auto text = EncodeText(batch);
  const std::vector<size_t> all = {0, 1, 2, 3};
  for (auto _ : state) {
    auto decoded = DecodeText(text.data(), text.size(), batch.schema(), all);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_TextParse);

void BM_ColumnarDecode(benchmark::State& state) {
  RecordBatch batch = LogBatch(10000);
  const auto block = EncodeColumnarBlock(batch, ColumnarWriteOptions{});
  const std::vector<size_t> all = {0, 1, 2, 3};
  for (auto _ : state) {
    auto decoded = DecodeColumnarBlock(block, batch.schema(), all);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(state.iterations() * block.ByteSize());
}
BENCHMARK(BM_ColumnarDecode);

void BM_ColumnarDecodeProjected(benchmark::State& state) {
  RecordBatch batch = LogBatch(10000);
  const auto block = EncodeColumnarBlock(batch, ColumnarWriteOptions{});
  const std::vector<size_t> narrow = {0};
  for (auto _ : state) {
    auto decoded = DecodeColumnarBlock(block, batch.schema(), narrow);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_ColumnarDecodeProjected);

void BM_HashTableBuild(benchmark::State& state) {
  RecordBatch batch = LogBatch(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    JoinHashTable table(0);
    RecordBatch copy = batch;
    benchmark::DoNotOptimize(table.AddBatch(std::move(copy)));
    table.Finalize();
    benchmark::DoNotOptimize(table.num_rows());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashTableBuild)->Arg(10000)->Arg(100000);

void BM_HashTableProbe(benchmark::State& state) {
  RecordBatch batch = LogBatch(100000);
  JoinHashTable table(0);
  {
    RecordBatch copy = batch;
    (void)table.AddBatch(std::move(copy));
  }
  table.Finalize();
  int32_t key = 0;
  for (auto _ : state) {
    int64_t count = 0;
    table.ForEachMatch(key++ % 10000, [&](uint32_t, uint32_t) { ++count; });
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashTableProbe);

void BM_BatchSerde(benchmark::State& state) {
  RecordBatch batch = LogBatch(10000);
  for (auto _ : state) {
    auto bytes = batch.Serialize();
    auto decoded = RecordBatch::Deserialize(bytes, batch.schema());
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(state.iterations() * batch.ByteSize());
}
BENCHMARK(BM_BatchSerde);

}  // namespace
}  // namespace hybridjoin

BENCHMARK_MAIN();
