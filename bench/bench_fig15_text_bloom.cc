// Figure 15 — "Effect of Bloom filter with text format: execution time
// (sec)".
//   (a) repartition family on text, sigma_T = 0.2 (the Figure 8(b) grid);
//   (b) db vs db(BF) on text, sigma_T = 0.1.
//
// Paper's shape: on text the scan dominates, so the Bloom filter's benefit
// to the *shuffle* is largely masked (repartition vs repartition(BF) are
// close, and BF can even lose); the zigzag join still wins robustly
// because its second filter also cuts the database transfer.

#include "bench_common.h"

using namespace hybridjoin;
using namespace hybridjoin::bench;

int main() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintPreamble("Figure 15", "Bloom-filter effect on the text format",
                config);

  std::printf("\n--- Figure 15(a): repartition family on text, "
              "sigma_T=0.2, S_L'=0.2 ---\n");
  std::printf("%8s %6s %15s %18s %10s\n", "sigma_L", "S_T'",
              "repartition(s)", "repartition(BF)(s)", "zigzag(s)");
  bool zigzag_best = true;
  double max_bf_gain = 0;
  for (double sigma_l : {0.1, 0.2, 0.4}) {
    for (double st : {0.05, 0.2}) {
      const SelectivitySpec spec{0.2, sigma_l, st, 0.2};
      auto cell = BenchCell::Create(config, spec, HdfsFormat::kText);
      if (cell == nullptr) continue;
      const double repart = cell->Run(JoinAlgorithm::kRepartition);
      const double repart_bf = cell->Run(JoinAlgorithm::kRepartitionBloom);
      const double zigzag = cell->Run(JoinAlgorithm::kZigzag);
      std::printf("%8.2f %6.2f %15.3f %18.3f %10.3f\n", sigma_l, st, repart,
                  repart_bf, zigzag);
      zigzag_best &= zigzag <= repart * 1.1 && zigzag <= repart_bf * 1.1;
      max_bf_gain = std::max(max_bf_gain, repart / repart_bf);
    }
  }
  ShapeCheck("zigzag still robustly best on text", zigzag_best);
  ShapeCheck("BF gain on text muted vs columnar (scan-dominated, < 1.6x)",
             max_bf_gain < 1.6);

  std::printf("\n--- Figure 15(b): db vs db(BF) on text, sigma_T=0.1, "
              "S_L'=0.1 ---\n");
  std::printf("%8s %8s %10s\n", "sigma_L", "db(s)", "db(BF)(s)");
  std::vector<double> gain;
  for (double sigma_l : {0.001, 0.01, 0.1, 0.2}) {
    const SelectivitySpec spec{0.1, sigma_l, 0.5, 0.1};
    auto cell = BenchCell::Create(config, spec, HdfsFormat::kText);
    if (cell == nullptr) continue;
    const double plain = cell->Run(JoinAlgorithm::kDbSide);
    const double bf = cell->Run(JoinAlgorithm::kDbSideBloom);
    std::printf("%8.3f %8.3f %10.3f\n", sigma_l, plain, bf);
    gain.push_back(plain / bf);
  }
  ShapeCheck("BF can fail to pay off at tiny sigma_L on text",
             !gain.empty() && gain.front() < 1.25);
  ShapeCheck("BF still helps at sigma_L = 0.2 (transfer still matters)",
             !gain.empty() && gain.back() > 1.0);
  return 0;
}
