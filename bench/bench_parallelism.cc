// Thread-scaling benchmark for the intra-node morsel parallelism
// (docs/architecture.md, "Intra-node parallelism"): sweeps 1/2/4/8 threads
// over the two CPU-bound per-node phases the exec_threads knob parallelizes
// and writes BENCH_parallelism.json (path overridable with --out=PATH).
//
//   scan_filter  — the JEN process-thread inner loop (predicate filter +
//                  selection gather + projection) fanned out over batch
//                  morsels through BatchMorselPipe, exactly the machinery
//                  ScanBlocksParallel puts behind the read queue.
//   build_probe  — key-space-sharded JoinHashTable build
//                  (AddBatchesParallel + FinalizeParallel on a ThreadPool)
//                  followed by a morsel-partitioned ProbeBatch + gather
//                  materialization, the drivers' build/probe phases.
//
// One thread runs the historical serial code paths (single shard, no pool,
// inline pipe), so the speedup column is parallel-vs-today, not
// parallel-vs-a-strawman. Wall-clock speedups need real cores: on the
// shared CI runners the JSON is a trend artifact, judged by diffing runs.
//
// Environment overrides: HJ_BENCH_SMOKE=1 shrinks everything for CI smoke.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "exec/join_hash_table.h"
#include "exec/morsel.h"
#include "expr/predicate.h"
#include "types/record_batch.h"

namespace hybridjoin {
namespace {

struct Rng {
  explicit Rng(uint64_t seed) : state(seed) {}
  uint64_t Next() {
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4568bULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  uint64_t Uniform(uint64_t n) { return Next() % n; }
  uint64_t state;
};

template <typename Fn>
double BestSeconds(int reps, Fn&& fn) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    Stopwatch sw;
    fn();
    best = std::min(best, sw.ElapsedSeconds());
  }
  return best;
}

struct PhaseResult {
  std::string name;
  size_t rows;
  // seconds[i] for kThreadSweep[i].
  std::vector<double> seconds;
};

constexpr uint32_t kThreadSweep[] = {1, 2, 4, 8};

// ------------------------------ scan_filter -------------------------------

std::vector<RecordBatch> MakeScanBatches(size_t num_batches,
                                         size_t rows_per_batch) {
  auto schema = Schema::Make({{"k", DataType::kInt32},
                              {"v", DataType::kInt32},
                              {"p", DataType::kInt64}});
  Rng rng(11);
  std::vector<RecordBatch> batches;
  batches.reserve(num_batches);
  for (size_t b = 0; b < num_batches; ++b) {
    RecordBatch batch(schema);
    auto& k = batch.mutable_column(0);
    auto& v = batch.mutable_column(1);
    auto& p = batch.mutable_column(2);
    for (size_t r = 0; r < rows_per_batch; ++r) {
      k.AppendValue(Value(static_cast<int32_t>(rng.Uniform(1 << 20))));
      v.AppendValue(Value(static_cast<int32_t>(rng.Uniform(100))));
      p.AppendValue(Value(static_cast<int64_t>(rng.Next())));
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

PhaseResult RunScanFilter(size_t num_batches, size_t rows_per_batch,
                          int reps) {
  const std::vector<RecordBatch> source =
      MakeScanBatches(num_batches, rows_per_batch);
  const PredicatePtr predicate = Cmp("v", CmpOp::kLt, 40);
  const std::vector<size_t> out_indexes = {0, 2};  // project k, p

  PhaseResult result;
  result.name = "scan_filter";
  result.rows = num_batches * rows_per_batch;

  for (uint32_t threads : kThreadSweep) {
    const double secs = BestSeconds(reps, [&] {
      std::atomic<int64_t> rows_out{0};
      // Per-thread hoisted scratch, like JenWorker's process loop.
      std::vector<std::vector<uint32_t>> sel(threads);
      BatchMorselPipe pipe(
          threads, [&](uint32_t t, RecordBatch&& batch) {
            std::vector<uint32_t>& s = sel[t];
            s.resize(batch.num_rows());
            std::iota(s.begin(), s.end(), 0u);
            Status st = predicate->Filter(batch, &s);
            if (!st.ok()) return st;
            RecordBatch out = batch.Gather(s).Project(out_indexes);
            rows_out.fetch_add(static_cast<int64_t>(out.num_rows()),
                               std::memory_order_relaxed);
            return Status::OK();
          });
      for (const RecordBatch& b : source) {
        RecordBatch copy = b;
        (void)pipe.Feed(std::move(copy));
      }
      Status st = pipe.Finish();
      HJ_CHECK(st.ok()) << st.ToString();
      HJ_CHECK_GT(rows_out.load(), 0);
    });
    result.seconds.push_back(secs);
  }
  return result;
}

// ------------------------------ build_probe -------------------------------

std::vector<RecordBatch> MakeBuildBatches(size_t num_batches,
                                          size_t rows_per_batch) {
  auto schema = Schema::Make({{"k", DataType::kInt64},
                              {"p1", DataType::kInt64},
                              {"p2", DataType::kFloat64}});
  Rng rng(13);
  const uint64_t key_domain = num_batches * rows_per_batch;
  std::vector<RecordBatch> batches;
  batches.reserve(num_batches);
  for (size_t b = 0; b < num_batches; ++b) {
    RecordBatch batch(schema);
    auto& k = batch.mutable_column(0);
    auto& p1 = batch.mutable_column(1);
    auto& p2 = batch.mutable_column(2);
    for (size_t r = 0; r < rows_per_batch; ++r) {
      k.AppendValue(Value(static_cast<int64_t>(rng.Uniform(key_domain))));
      p1.AppendValue(Value(static_cast<int64_t>(r)));
      p2.AppendValue(Value(static_cast<double>(b) * 0.5));
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

PhaseResult RunBuildProbe(size_t num_batches, size_t rows_per_batch,
                          size_t probe_keys, int reps) {
  const std::vector<RecordBatch> source =
      MakeBuildBatches(num_batches, rows_per_batch);
  Rng rng(17);
  std::vector<int64_t> probe(probe_keys);
  const uint64_t key_domain = num_batches * rows_per_batch;
  for (auto& k : probe) {
    k = static_cast<int64_t>(rng.Uniform(2 * key_domain));  // ~50% hit rate
  }
  constexpr size_t kMorsel = 4096;

  PhaseResult result;
  result.name = "build_probe";
  result.rows = num_batches * rows_per_batch;

  for (uint32_t threads : kThreadSweep) {
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
    const uint32_t shards = threads == 1 ? 1 : 2 * threads;

    const double secs = BestSeconds(reps, [&] {
      // Build: sharded table, range-extracted in parallel, per-shard
      // bucket directories built concurrently.
      JoinHashTable table(0, shards);
      std::vector<RecordBatch> batches = source;
      Status st = table.AddBatchesParallel(std::move(batches), pool.get());
      HJ_CHECK(st.ok()) << st.ToString();
      st = table.FinalizeParallel(pool.get());
      HJ_CHECK(st.ok()) << st.ToString();

      // Probe: morsels of the key stream, statically striped across the
      // fleet; each virtual worker keeps its own scratch and materializes
      // its own output chunks, like the drivers' per-thread probers.
      const size_t num_morsels = (probe.size() + kMorsel - 1) / kMorsel;
      std::atomic<int64_t> matched{0};
      auto probe_worker = [&](size_t w) {
        std::vector<JoinMatch> matches;
        std::vector<std::vector<uint32_t>> rows_by_batch(
            table.batches().size());
        RecordBatch out(source[0].schema());
        int64_t local = 0;
        for (size_t m = w; m < num_morsels; m += threads) {
          const size_t lo = m * kMorsel;
          const size_t n = std::min(kMorsel, probe.size() - lo);
          matches.clear();
          table.ProbeBatch(std::span<const int64_t>(probe.data() + lo, n),
                           &matches);
          for (auto& rows : rows_by_batch) rows.clear();
          for (const JoinMatch& match : matches) {
            rows_by_batch[match.batch].push_back(match.row);
          }
          for (size_t b = 0; b < rows_by_batch.size(); ++b) {
            const std::vector<uint32_t>& rows = rows_by_batch[b];
            if (rows.empty()) continue;
            const RecordBatch& stored = table.batches()[b];
            for (size_t c = 0; c < out.num_columns(); ++c) {
              out.mutable_column(c).GatherAppendFrom(
                  stored.column(c), rows.data(), rows.size());
            }
          }
          local += static_cast<int64_t>(matches.size());
          if (out.num_rows() >= kMorsel) out = RecordBatch(source[0].schema());
        }
        matched.fetch_add(local, std::memory_order_relaxed);
        return Status::OK();
      };
      if (pool == nullptr) {
        (void)probe_worker(0);
      } else {
        st = pool->ParallelFor(0, threads, 1, probe_worker);
        HJ_CHECK(st.ok()) << st.ToString();
      }
      HJ_CHECK_GT(matched.load(), 0);
    });
    result.seconds.push_back(secs);
  }
  return result;
}

// --------------------------------- output ---------------------------------

int WriteJson(const std::string& path,
              const std::vector<PhaseResult>& phases) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"phases\": [\n");
  for (size_t p = 0; p < phases.size(); ++p) {
    const PhaseResult& r = phases[p];
    std::fprintf(f, "    {\"name\": \"%s\", \"rows\": %zu, \"sweep\": [\n",
                 r.name.c_str(), r.rows);
    for (size_t i = 0; i < r.seconds.size(); ++i) {
      std::fprintf(f,
                   "      {\"threads\": %u, \"seconds\": %.6f, "
                   "\"speedup_vs_1\": %.2f}%s\n",
                   kThreadSweep[i], r.seconds[i],
                   r.seconds[0] / r.seconds[i],
                   i + 1 < r.seconds.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", p + 1 < phases.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

int Run(const std::string& out_path) {
  const bool smoke = [] {
    const char* s = std::getenv("HJ_BENCH_SMOKE");
    return s != nullptr && s[0] == '1';
  }();
  const size_t scan_batches = smoke ? 24 : 192;
  const size_t scan_rows = smoke ? 4096 : 16384;
  const size_t build_batches = smoke ? 16 : 64;
  const size_t build_rows = smoke ? 4096 : 16384;
  const size_t probe_keys = smoke ? (256u << 10) : (2u << 20);
  const int reps = smoke ? 2 : 3;

  std::vector<PhaseResult> phases;
  phases.push_back(RunScanFilter(scan_batches, scan_rows, reps));
  phases.push_back(RunBuildProbe(build_batches, build_rows, probe_keys, reps));

  std::printf("%-12s %8s", "phase", "rows");
  for (uint32_t t : kThreadSweep) std::printf("   t=%u(s)", t);
  std::printf("  speedup@8\n");
  for (const PhaseResult& r : phases) {
    std::printf("%-12s %8zu", r.name.c_str(), r.rows);
    for (double s : r.seconds) std::printf(" %8.3f", s);
    std::printf("      %.2fx\n", r.seconds.front() / r.seconds.back());
  }
  return WriteJson(out_path, phases);
}

}  // namespace
}  // namespace hybridjoin

int main(int argc, char** argv) {
  std::string out_path = "BENCH_parallelism.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  return hybridjoin::Run(out_path);
}
