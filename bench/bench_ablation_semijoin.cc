// Ablation — Bloom filters vs the exact semijoin for the zigzag join's
// second (HDFS -> DB) pruning step. The paper chooses Bloom filters over
// classic semijoins (§6: "Bloom join ... achieves better performance than
// semijoin"): the filter has ~5% false positives but a small fixed wire
// footprint, while the exact semijoin ships every T' join key across the
// interconnect and back. This bench measures that trade on our substrate
// as S_T' (how much the second filter can prune) varies.

#include "bench_common.h"

using namespace hybridjoin;
using namespace hybridjoin::bench;

int main() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintPreamble("Ablation: second-filter kind",
                "zigzag with Bloom filter vs exact semijoin", config);
  std::printf("%6s %12s %11s %14s %14s %14s\n", "S_T'", "bloom(s)",
              "semijoin(s)", "bloom T'' sent", "semi T'' sent",
              "semi key KB");
  bool bloom_never_slower_on_avg = true;
  double bloom_sum = 0;
  double semi_sum = 0;
  for (double st : {0.5, 0.2, 0.05}) {
    const SelectivitySpec spec{0.1, 0.4, st, 0.1};
    auto cell = BenchCell::Create(config, spec, HdfsFormat::kColumnar);
    if (cell == nullptr) return 1;
    auto prepared =
        PrepareQuery(&cell->warehouse().context(), cell->workload().MakeQuery());
    if (!prepared.ok()) return 1;

    auto run = [&](SecondFilterKind kind, ExecutionReport* report) {
      JoinDriverOptions options;
      options.second_filter = kind;
      (void)RunRepartitionFamilyJoin(&cell->warehouse().context(), *prepared,
                                     true, true, options);  // warm
      double best = 1e100;
      for (int i = 0; i < 2; ++i) {
        auto r = RunRepartitionFamilyJoin(&cell->warehouse().context(),
                                          *prepared, true, true, options);
        if (!r.ok()) return -1.0;
        if (r->report.wall_seconds < best) {
          best = r->report.wall_seconds;
          *report = r->report;
        }
      }
      return best;
    };

    ExecutionReport bloom_report;
    ExecutionReport semi_report;
    const double bloom = run(SecondFilterKind::kBloom, &bloom_report);
    const double semi = run(SecondFilterKind::kExactSemijoin, &semi_report);
    std::printf("%6.2f %12.3f %11.3f %14lld %14lld %13.1f\n", st, bloom,
                semi,
                static_cast<long long>(
                    bloom_report.Counter(metric::kDbTuplesSent)),
                static_cast<long long>(
                    semi_report.Counter(metric::kDbTuplesSent)),
                semi_report.Counter("semijoin.key_bytes_sent") / 1024.0);
    bloom_sum += bloom;
    semi_sum += semi;
    // Exactness sanity: semijoin never ships more T'' tuples than Bloom.
    if (semi_report.Counter(metric::kDbTuplesSent) >
        bloom_report.Counter(metric::kDbTuplesSent)) {
      bloom_never_slower_on_avg = false;
    }
  }
  ShapeCheck("semijoin ships <= tuples than Bloom (no false positives)",
             bloom_never_slower_on_avg);
  ShapeCheck("Bloom variant is not slower overall (the paper's pick)",
             bloom_sum <= semi_sum * 1.1);
  return 0;
}
