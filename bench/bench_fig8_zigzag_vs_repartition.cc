// Figure 8 — "Zigzag join vs repartition joins: execution time (sec)".
//   (a) sigma_T = 0.1, S_L' = 0.1;  (b) sigma_T = 0.2, S_L' = 0.2.
// Grid: sigma_L in {0.1, 0.2, 0.4} x S_T' in {0.05, 0.1, 0.2}.
//
// Paper's shape: zigzag is fastest everywhere — up to 2.1x over plain
// repartition and up to 1.8x over repartition(BF); all three grow modestly
// with sigma_L.

#include "bench_common.h"

using namespace hybridjoin;
using namespace hybridjoin::bench;

namespace {

void RunSubfigure(const BenchConfig& config, const char* label,
                  double sigma_t, double sl) {
  std::printf("\n--- Figure 8(%s): sigma_T=%.2f, S_L'=%.2f ---\n", label,
              sigma_t, sl);
  std::printf("%8s %6s %15s %18s %10s\n", "sigma_L", "S_T'", "repartition(s)",
              "repartition(BF)(s)", "zigzag(s)");
  double sum_repart = 0;
  double sum_repart_bf = 0;
  double sum_zigzag = 0;
  double max_speedup = 0;
  int losses = 0;  // cells where zigzag is >10% behind either variant
  for (double sigma_l : {0.1, 0.2, 0.4}) {
    for (double st : {0.05, 0.1, 0.2}) {
      const SelectivitySpec spec{sigma_t, sigma_l, st, sl};
      auto cell = BenchCell::Create(config, spec, HdfsFormat::kColumnar);
      if (cell == nullptr) continue;
      const double repart = cell->Run(JoinAlgorithm::kRepartition);
      const double repart_bf = cell->Run(JoinAlgorithm::kRepartitionBloom);
      const double zigzag = cell->Run(JoinAlgorithm::kZigzag);
      std::printf("%8.2f %6.2f %15.3f %18.3f %10.3f\n", sigma_l, st, repart,
                  repart_bf, zigzag);
      sum_repart += repart;
      sum_repart_bf += repart_bf;
      sum_zigzag += zigzag;
      max_speedup = std::max(max_speedup, repart / zigzag);
      losses += (zigzag > repart * 1.10 || zigzag > repart_bf * 1.10);
    }
  }
  std::printf("grid means: repartition %.3f s, repartition(BF) %.3f s, "
              "zigzag %.3f s; max zigzag speedup %.2fx (paper: up to 2.1x)\n",
              sum_repart / 9, sum_repart_bf / 9, sum_zigzag / 9, max_speedup);
  ShapeCheck("zigzag fastest on grid average (5% tolerance)",
             sum_zigzag <= sum_repart * 1.05 &&
                 sum_zigzag <= sum_repart_bf * 1.05);
  ShapeCheck("zigzag within noise of best in (almost) every cell",
             losses <= 1);
}

}  // namespace

int main() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintPreamble("Figure 8", "zigzag vs repartition joins, execution time",
                config);
  RunSubfigure(config, "a", 0.1, 0.1);
  RunSubfigure(config, "b", 0.2, 0.2);
  return 0;
}
