// Figure 8 — "Zigzag join vs repartition joins: execution time (sec)".
//   (a) sigma_T = 0.1, S_L' = 0.1;  (b) sigma_T = 0.2, S_L' = 0.2.
// Grid: sigma_L in {0.1, 0.2, 0.4} x S_T' in {0.05, 0.1, 0.2}.
//
// Paper's shape: zigzag is fastest everywhere — up to 2.1x over plain
// repartition and up to 1.8x over repartition(BF); all three grow modestly
// with sigma_L.
//
// Besides the printed table this bench writes BENCH_fig8.json: every cell's
// wall times plus the trace-derived per-phase latency summaries
// (ExecutionReport::histograms), a perf-trajectory baseline for future PRs.
// It also writes PROFILE_fig8.json — the distributed query profile of the
// last zigzag run — so CI can gate both files with tools/perfcheck.

#include <sstream>
#include <vector>

#include "bench_common.h"

using namespace hybridjoin;
using namespace hybridjoin::bench;

namespace {

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

std::string PhasesJson(const ExecutionReport& report) {
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const auto& [name, h] : report.histograms) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << name << "\",\"count\":" << h.count
        << ",\"total_seconds\":" << Num(h.total_seconds)
        << ",\"p50_seconds\":" << Num(h.p50_seconds)
        << ",\"p95_seconds\":" << Num(h.p95_seconds)
        << ",\"p99_seconds\":" << Num(h.p99_seconds) << "}";
  }
  out << "]";
  return out.str();
}

std::string AlgorithmJson(JoinAlgorithm algorithm, double wall,
                          const ExecutionReport& report) {
  std::ostringstream out;
  out << "{\"algorithm\":\"" << JoinAlgorithmName(algorithm)
      << "\",\"wall_seconds\":" << Num(wall)
      << ",\"phases\":" << PhasesJson(report) << "}";
  return out.str();
}

void RunSubfigure(const BenchConfig& config, const char* label,
                  double sigma_t, double sl,
                  std::vector<std::string>* json_cells,
                  obs::QueryProfile* last_zigzag_profile) {
  std::printf("\n--- Figure 8(%s): sigma_T=%.2f, S_L'=%.2f ---\n", label,
              sigma_t, sl);
  std::printf("%8s %6s %15s %18s %10s\n", "sigma_L", "S_T'", "repartition(s)",
              "repartition(BF)(s)", "zigzag(s)");
  double sum_repart = 0;
  double sum_repart_bf = 0;
  double sum_zigzag = 0;
  double max_speedup = 0;
  int losses = 0;  // cells where zigzag is >10% behind either variant
  for (double sigma_l : {0.1, 0.2, 0.4}) {
    for (double st : {0.05, 0.1, 0.2}) {
      const SelectivitySpec spec{sigma_t, sigma_l, st, sl};
      auto cell = BenchCell::Create(config, spec, HdfsFormat::kColumnar);
      if (cell == nullptr) continue;
      // Trace the runs so the JSON baseline carries per-phase latencies
      // (disabled-tracer overhead is <2%, enabled is in the same ballpark).
      cell->warehouse().context().tracer().set_enabled(true);
      ExecutionReport r_repart, r_repart_bf, r_zigzag;
      const double repart = cell->Run(JoinAlgorithm::kRepartition, &r_repart);
      const double repart_bf =
          cell->Run(JoinAlgorithm::kRepartitionBloom, &r_repart_bf);
      const double zigzag = cell->Run(JoinAlgorithm::kZigzag, &r_zigzag);
      std::printf("%8.2f %6.2f %15.3f %18.3f %10.3f\n", sigma_l, st, repart,
                  repart_bf, zigzag);
      std::ostringstream cell_json;
      cell_json << "{\"subfigure\":\"" << label
                << "\",\"sigma_t\":" << Num(sigma_t) << ",\"sl\":" << Num(sl)
                << ",\"sigma_l\":" << Num(sigma_l) << ",\"st\":" << Num(st)
                << ",\"algorithms\":["
                << AlgorithmJson(JoinAlgorithm::kRepartition, repart, r_repart)
                << ","
                << AlgorithmJson(JoinAlgorithm::kRepartitionBloom, repart_bf,
                                 r_repart_bf)
                << "," << AlgorithmJson(JoinAlgorithm::kZigzag, zigzag, r_zigzag)
                << "]}";
      json_cells->push_back(cell_json.str());
      *last_zigzag_profile = r_zigzag.profile;
      sum_repart += repart;
      sum_repart_bf += repart_bf;
      sum_zigzag += zigzag;
      max_speedup = std::max(max_speedup, repart / zigzag);
      losses += (zigzag > repart * 1.10 || zigzag > repart_bf * 1.10);
    }
  }
  std::printf("grid means: repartition %.3f s, repartition(BF) %.3f s, "
              "zigzag %.3f s; max zigzag speedup %.2fx (paper: up to 2.1x)\n",
              sum_repart / 9, sum_repart_bf / 9, sum_zigzag / 9, max_speedup);
  ShapeCheck("zigzag fastest on grid average (5% tolerance)",
             sum_zigzag <= sum_repart * 1.05 &&
                 sum_zigzag <= sum_repart_bf * 1.05);
  ShapeCheck("zigzag within noise of best in (almost) every cell",
             losses <= 1);
}

}  // namespace

int main() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintPreamble("Figure 8", "zigzag vs repartition joins, execution time",
                config);
  std::vector<std::string> cells;
  obs::QueryProfile last_zigzag_profile;
  RunSubfigure(config, "a", 0.1, 0.1, &cells, &last_zigzag_profile);
  RunSubfigure(config, "b", 0.2, 0.2, &cells, &last_zigzag_profile);

  const char* out_path = "BENCH_fig8.json";
  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "could not open %s for writing\n", out_path);
    return 1;
  }
  std::ostringstream doc;
  doc << "{\"exhibit\":\"fig8\",\"workload\":{"
      << "\"t_rows\":" << config.workload.t_rows
      << ",\"l_rows\":" << config.workload.l_rows
      << ",\"join_keys\":" << config.workload.num_join_keys
      << ",\"db_workers\":" << config.db_workers
      << ",\"jen_workers\":" << config.jen_workers << "},\"cells\":[";
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) doc << ",";
    doc << cells[i];
  }
  doc << "]}\n";
  std::fputs(doc.str().c_str(), out);
  std::fclose(out);
  std::printf("wrote per-phase latency baseline to %s (%zu cells)\n", out_path,
              cells.size());

  const char* profile_path = "PROFILE_fig8.json";
  if (Status st = last_zigzag_profile.WriteJson(profile_path); !st.ok()) {
    std::fprintf(stderr, "could not write %s: %s\n", profile_path,
                 st.ToString().c_str());
    return 1;
  }
  std::printf("wrote distributed query profile to %s\n", profile_path);
  return 0;
}
