// Ablation — Bloom filter sizing. The paper fixes 8 bits/key and k=2
// (~5% FPR, 16 MB filters) and notes the m/k trade-off is prior work; this
// bench regenerates that trade-off on our substrate: smaller filters are
// cheaper to ship but prune less, larger ones prune to the join-key floor.

#include "bench_common.h"

using namespace hybridjoin;
using namespace hybridjoin::bench;

int main() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintPreamble("Ablation: Bloom sizing",
                "bits/key and hash count vs pruning and filter cost",
                config);
  const SelectivitySpec spec{0.1, 0.4, 0.2, 0.1};
  auto workload = Workload::Generate(config.workload, spec);
  if (!workload.ok()) return 1;

  std::printf("%9s %3s %13s %13s %14s %12s %10s\n", "bits/key", "k",
              "expected FPR", "filter bytes", "tuples shuffl.", "db sent",
              "zigzag(s)");
  int64_t shuffled_8_2 = 0;
  int64_t shuffled_2_1 = 0;
  for (double bits_per_key : {2.0, 4.0, 8.0, 16.0}) {
    for (uint32_t k : {1u, 2u, 4u}) {
      SimulationConfig sim = MakeSimConfig(config);
      sim.bloom.bits_per_key = bits_per_key;
      sim.bloom.num_hashes = k;
      HybridWarehouse hw(sim);
      LoadOptions load;
      load.hdfs.rows_per_block = 32 * 1024;
      if (!LoadWorkload(&hw, *workload, load).ok()) return 1;
      const HybridQuery query = workload->MakeQuery();
      auto warm = hw.Execute(query, JoinAlgorithm::kZigzag);
      if (!warm.ok()) return 1;
      auto result = hw.Execute(query, JoinAlgorithm::kZigzag);
      if (!result.ok()) return 1;
      const BloomParams params = BloomParams::ForKeys(
          sim.bloom.expected_keys, bits_per_key, k);
      const int64_t shuffled =
          result->report.Counter(metric::kHdfsTuplesShuffled);
      std::printf("%9.0f %3u %12.2f%% %13lld %14lld %12lld %10.3f\n",
                  bits_per_key, k,
                  params.ExpectedFpr(sim.bloom.expected_keys) * 100,
                  static_cast<long long>(params.num_bits / 8),
                  static_cast<long long>(shuffled),
                  static_cast<long long>(
                      result->report.Counter(metric::kDbTuplesSent)),
                  result->report.wall_seconds);
      if (bits_per_key == 8.0 && k == 2) shuffled_8_2 = shuffled;
      if (bits_per_key == 2.0 && k == 1) shuffled_2_1 = shuffled;
    }
  }
  ShapeCheck("paper's 8 bits/key, k=2 prunes more than 2 bits/key, k=1",
             shuffled_8_2 < shuffled_2_1);
  return 0;
}
