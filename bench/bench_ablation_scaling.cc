// Ablations — engine design choices that DESIGN.md calls out:
//   1. cluster width scaling (JEN workers 2/4/8, the "massive parallelism"
//      the title promises),
//   2. locality-aware block assignment on/off,
//   3. columnar chunk skipping on/off (a capability the paper's scan-based
//      HQP lacks; we measure what it adds),
//   4. cross-cluster switch bandwidth (what if the interconnect were fat?).

#include "bench_common.h"

using namespace hybridjoin;
using namespace hybridjoin::bench;

namespace {

double RunWith(const BenchConfig& bench, const SimulationConfig& sim,
               const Workload& workload, HdfsFormat format,
               JoinAlgorithm algorithm, ExecutionReport* report = nullptr) {
  HybridWarehouse hw(sim);
  LoadOptions load;
  load.hdfs.format = format;
  load.hdfs.rows_per_block = 32 * 1024;
  if (!LoadWorkload(&hw, workload, load).ok()) return -1;
  const HybridQuery query = workload.MakeQuery();
  if (!hw.Execute(query, algorithm).ok()) return -1;  // warm
  auto result = hw.Execute(query, algorithm);
  if (!result.ok()) return -1;
  if (report != nullptr) *report = result->report;
  return result->report.wall_seconds;
  (void)bench;
}

}  // namespace

int main() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintPreamble("Ablations", "scaling, locality, chunk skipping, switch",
                config);
  const SelectivitySpec spec{0.1, 0.4, 0.2, 0.1};
  auto workload = Workload::Generate(config.workload, spec);
  if (!workload.ok()) return 1;

  // 1. Worker scaling (text format so the scan is the bottleneck).
  std::printf("\n--- JEN worker scaling (text format, zigzag) ---\n");
  std::printf("%12s %10s\n", "JEN workers", "zigzag(s)");
  std::vector<double> scaling;
  for (uint32_t n : {2u, 4u, 8u}) {
    BenchConfig b = config;
    b.jen_workers = n;
    SimulationConfig sim = MakeSimConfig(b);
    const double t = RunWith(b, sim, *workload, HdfsFormat::kText,
                             JoinAlgorithm::kZigzag);
    std::printf("%12u %10.3f\n", n, t);
    scaling.push_back(t);
  }
  ShapeCheck("more JEN workers -> faster scans (2 -> 8 workers)",
             scaling.size() == 3 && scaling.front() > scaling.back());

  // 2. Locality-aware assignment.
  std::printf("\n--- Locality-aware block assignment (text, zigzag) ---\n");
  ExecutionReport local_report;
  SimulationConfig sim_local = MakeSimConfig(config);
  const double with_locality =
      RunWith(config, sim_local, *workload, HdfsFormat::kText,
              JoinAlgorithm::kZigzag, &local_report);
  SimulationConfig sim_remote = MakeSimConfig(config);
  sim_remote.jen.locality_aware = false;
  ExecutionReport no_locality_report;
  const double without_locality =
      RunWith(config, sim_remote, *workload, HdfsFormat::kText,
              JoinAlgorithm::kZigzag, &no_locality_report);
  std::printf("locality-aware:  %.3f s (%lld remote blocks)\n",
              with_locality,
              static_cast<long long>(
                  local_report.Counter(metric::kHdfsBlocksRemote)));
  std::printf("round-robin:     %.3f s (%lld remote blocks)\n",
              without_locality,
              static_cast<long long>(
                  no_locality_report.Counter(metric::kHdfsBlocksRemote)));
  ShapeCheck("locality-aware assignment reads no remote blocks",
             local_report.Counter(metric::kHdfsBlocksRemote) == 0);

  // 3. Chunk skipping (columnar). On the paper's workload L is written in
  //    arrival order, so every block's corPred min/max spans the domain
  //    and nothing can be skipped; a table clustered on the predicate
  //    column (Hive-style sorted layout) is where the stats pay off.
  std::printf("\n--- Columnar chunk skipping (zigzag) ---\n");
  Workload sorted = *workload;
  {
    // Cluster L on corPred.
    RecordBatch all = ConcatBatches(Workload::LSchema(),
                                    workload->l_batches());
    std::vector<uint32_t> order(all.num_rows());
    for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    const auto& cor = all.column(1).i32();
    std::sort(order.begin(), order.end(),
              [&](uint32_t a, uint32_t b) { return cor[a] < cor[b]; });
    sorted.OverrideLBatches({all.Gather(order)});
  }
  SimulationConfig sim_skip = MakeSimConfig(config);
  ExecutionReport skip_report;
  const double with_skip =
      RunWith(config, sim_skip, sorted, HdfsFormat::kColumnar,
              JoinAlgorithm::kZigzag, &skip_report);
  SimulationConfig sim_noskip = MakeSimConfig(config);
  sim_noskip.jen.chunk_skipping = false;
  ExecutionReport noskip_report;
  const double without_skip =
      RunWith(config, sim_noskip, sorted, HdfsFormat::kColumnar,
              JoinAlgorithm::kZigzag, &noskip_report);
  std::printf("clustered L, with skipping:    %.3f s (%lld bytes read, "
              "%lld rows decoded)\n",
              with_skip,
              static_cast<long long>(
                  skip_report.Counter(metric::kHdfsBytesRead)),
              static_cast<long long>(
                  skip_report.Counter(metric::kHdfsTuplesScanned)));
  std::printf("clustered L, without skipping: %.3f s (%lld bytes read, "
              "%lld rows decoded)\n",
              without_skip,
              static_cast<long long>(
                  noskip_report.Counter(metric::kHdfsBytesRead)),
              static_cast<long long>(
                  noskip_report.Counter(metric::kHdfsTuplesScanned)));
  ShapeCheck("skipping reads fewer bytes on a clustered table",
             skip_report.Counter(metric::kHdfsBytesRead) <
                 noskip_report.Counter(metric::kHdfsBytesRead));

  // 4. Zigzag build side (paper §4.4): build on shuffled HDFS data (their
  //    choice, overlaps with the scan) vs buffering L' and building on the
  //    later-arriving database records.
  std::printf("\n--- Zigzag hash-build side (columnar) ---\n");
  {
    SimulationConfig sim = MakeSimConfig(config);
    HybridWarehouse hw(sim);
    LoadOptions load;
    load.hdfs.rows_per_block = 32 * 1024;
    if (!LoadWorkload(&hw, *workload, load).ok()) return 1;
    auto prepared = PrepareQuery(&hw.context(), workload->MakeQuery());
    if (!prepared.ok()) return 1;
    auto run = [&](bool build_on_db) {
      JoinDriverOptions options;
      options.build_on_db_data = build_on_db;
      (void)RunRepartitionFamilyJoin(&hw.context(), *prepared, true, true,
                                     options);  // warm
      double best = 1e100;
      for (int i = 0; i < 2; ++i) {
        auto r = RunRepartitionFamilyJoin(&hw.context(), *prepared, true,
                                          true, options);
        if (!r.ok()) return -1.0;
        best = std::min(best, r->report.wall_seconds);
      }
      return best;
    };
    const double on_hdfs = run(false);
    const double on_db = run(true);
    std::printf("build on shuffled L' (paper): %.3f s\n", on_hdfs);
    std::printf("build on database T'':        %.3f s\n", on_db);
    std::printf("note: the paper's rationale is overlap — the L' build hides\n"
                "behind the scan on their 8-core nodes, while T'' cannot\n"
                "arrive before BF_H. On a single-CPU simulation that overlap\n"
                "saves nothing, so the classic build-on-smaller-side choice\n"
                "can win here; both plans return identical rows (report_test).\n");
    ShapeCheck("both build sides are within 2x (choice is regime-dependent)",
               on_hdfs <= on_db * 2.0 && on_db <= on_hdfs * 2.0);
  }

  // 5. Fat inter-cluster switch: does the DB-side join catch up?
  std::printf("\n--- Cross-cluster switch bandwidth (db(BF) join) ---\n");
  SimulationConfig sim_thin = MakeSimConfig(config);
  const double thin = RunWith(config, sim_thin, *workload,
                              HdfsFormat::kColumnar,
                              JoinAlgorithm::kDbSideBloom);
  SimulationConfig sim_fat = MakeSimConfig(config);
  sim_fat.net.cross_switch_bps *= 10;
  sim_fat.net.db_nic_bps *= 10;
  const double fat = RunWith(config, sim_fat, *workload,
                             HdfsFormat::kColumnar,
                             JoinAlgorithm::kDbSideBloom);
  std::printf("paper-scaled switch: %.3f s; 10x switch: %.3f s\n", thin, fat);
  ShapeCheck("db-side join is interconnect-bound (10x switch helps)",
             fat < thin);
  return 0;
}
