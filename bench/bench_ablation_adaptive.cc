// Ablation — adaptive join location: can the mid-query decision point
// (hybrid/adaptive_join.cc) recover from a misleading initial estimate, and
// what does it cost when the estimate was fine?
//
// Two cells over the same query shape:
//
//   misleading  T is stored sorted by its corPred column
//               (WorkloadConfig::cluster_t_by_pred), so the estimator's
//               single sampled batch sees zero qualifying rows and the
//               advisor mispicks broadcast for the "tiny" T'. The throttled
//               cross-switch makes broadcasting the real T' (20% of the
//               table) expensive. Three runs: the static mispick, the
//               adaptive run (which pivots to zigzag when the Bloom-build
//               scan reports the exact count), and the static oracle pick.
//               The headline is gap recovery:
//               (mispick - adaptive) / (mispick - oracle).
//   accurate    the same workload in random storage order: the estimate is
//               good, the decision point must stay, and the headline is the
//               adaptive layer's overhead vs the static oracle run.
//
// Every run is compared byte-for-byte against the single-node reference
// (the bench exits 1 on any mismatch). Writes BENCH_adaptive.json (path
// overridable with --out=PATH) in the perfcheck-gateable shape.
//
// The workload shape is pinned (not HJ_BENCH_* scaled): the misleading cell
// depends on the sampled batch landing in the non-qualifying region of the
// clustered layout, which is a deterministic property of this exact shape.
// HJ_BENCH_REPEATS is honored.

#include "bench_common.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "hybrid/reference.h"
#include "testing/differential.h"

using namespace hybridjoin;
using namespace hybridjoin::bench;

namespace {

struct Point {
  std::string name;
  std::string algorithm;   ///< what actually executed
  bool pivoted = false;
  double wall_seconds = 0;
  int64_t est_db_bytes = -1;  ///< advisor.estimated_db_bytes (-1: no profile row)
  int64_t obs_db_bytes = -1;  ///< advisor.observed_db_bytes
  bool match = true;          ///< byte-for-byte equal to the reference
};

int WriteJson(const std::string& path, const std::vector<Point>& sweep,
              double gap_recovery, double overhead_pct) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"adaptive\": {\n    \"sweep\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const Point& p = sweep[i];
    std::fprintf(f,
                 "      {\"name\": \"%s\", \"algorithm\": \"%s\", "
                 "\"pivoted\": %d, \"wall_seconds\": %.6f, "
                 "\"est_db_bytes\": %lld, \"obs_db_bytes\": %lld, "
                 "\"match\": %d}%s\n",
                 p.name.c_str(), p.algorithm.c_str(), p.pivoted ? 1 : 0,
                 p.wall_seconds, static_cast<long long>(p.est_db_bytes),
                 static_cast<long long>(p.obs_db_bytes), p.match ? 1 : 0,
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f,
               "    ],\n    \"gap_recovery\": %.4f,\n"
               "    \"overhead_pct\": %.2f\n  }\n}\n",
               gap_recovery, overhead_pct);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_adaptive.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  BenchConfig config = BenchConfig::FromEnv();
  // Pinned shape (see header comment): 16 stored batches per DB worker with
  // the qualifying 20% clustered into the first ~3, so the seeded sample
  // batch deterministically reports zero qualifying rows.
  config.workload.num_join_keys = 2048;
  config.workload.t_rows = 64 * 1024;
  config.workload.l_rows = 192 * 1024;
  config.workload.batch_rows = 16 * 1024;
  config.db_workers = 2;
  config.jen_workers = 3;
  PrintPreamble("Ablation: adaptive join location",
                "mid-query re-optimization from observed selectivities — "
                "misleading vs accurate estimates",
                config);

  const SelectivitySpec spec{0.2, 0.1, 0.5, 0.5};

  auto make_sim = [&]() {
    SimulationConfig sim;
    sim.db.num_workers = config.db_workers;
    sim.jen_workers = config.jen_workers;
    sim.db.batch_rows = 4096;
    sim.bloom.expected_keys = config.workload.num_join_keys;
    sim.exec_threads = 1;
    // The ablation's cost asymmetry: a slow inter-cluster switch makes the
    // broadcast mispick pay for the real T', and a modest JEN NIC keeps the
    // estimated zigzag shuffle above the scan so the misled advisor prefers
    // broadcast in the first place.
    sim.net.hdfs_nic_bps = 2 * 1024 * 1024;
    sim.net.cross_switch_bps = 512 * 1024;
    return sim;
  };

  const int runs = std::max(config.repeats, 2);
  std::vector<Point> sweep;
  bool all_match = true;
  RecordBatch reference;

  // The simulated NICs are token buckets that accrue burst credit while
  // idle (burst = max(64 KiB, rate/10), i.e. full again after <= 125 ms at
  // these rates). Without equalizing, a run whose network phases interleave
  // with CPU phases (the adaptive decision point) rides refilled credit
  // that a back-to-back static run has already drained — which once showed
  // up here as a nonsensical "negative overhead" for the adaptive layer.
  // Refill every bucket before each run so all points start identically.
  const auto refill_nics = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  };

  // One measured point: warm run discarded, best of `runs`. `execute`
  // returns one executed QueryResult per call.
  auto run_point =
      [&](const std::string& name,
          const std::function<Result<QueryResult>()>& execute) -> bool {
    refill_nics();
    if (auto warm = execute(); !warm.ok()) {
      std::fprintf(stderr, "%s warm run failed: %s\n", name.c_str(),
                   warm.status().ToString().c_str());
      return false;
    }
    Point p;
    p.name = name;
    double best = 1e100;
    for (int i = 0; i < runs; ++i) {
      refill_nics();
      auto result = execute();
      if (!result.ok()) {
        std::fprintf(stderr, "%s run failed: %s\n", name.c_str(),
                     result.status().ToString().c_str());
        return false;
      }
      best = std::min(best, result->report.wall_seconds);
      if (i == runs - 1) {
        p.algorithm = JoinAlgorithmName(result->report.algorithm);
        const obs::QueryProfile& prof = result->report.profile;
        if (const auto* row =
                prof.FindCounter("driver", metric::kAdvisorPivoted)) {
          p.pivoted = row->total > 0;
        }
        if (const auto* row =
                prof.FindCounter("driver", metric::kAdvisorEstimatedDbBytes)) {
          p.est_db_bytes = row->total;
        }
        if (const auto* row =
                prof.FindCounter("driver", metric::kAdvisorObservedDbBytes)) {
          p.obs_db_bytes = row->total;
        }
        auto diff =
            testing_support::CompareBatches(reference, result->rows);
        p.match = !diff.has_value();
        if (!p.match) {
          all_match = false;
          std::fprintf(stderr, "MISMATCH at %s: %s\n", name.c_str(),
                       diff->c_str());
        }
      }
    }
    p.wall_seconds = best;
    sweep.push_back(std::move(p));
    return true;
  };

  // ---------------- Cell 1: misleading statistics ----------------
  Advice mislead_advice;
  JoinAlgorithm mispick = JoinAlgorithm::kBroadcast;
  JoinAlgorithm oracle_pick = JoinAlgorithm::kZigzag;
  bool est_misled = false;
  {
    WorkloadConfig wc = config.workload;
    wc.cluster_t_by_pred = true;
    auto workload = Workload::Generate(wc, spec);
    if (!workload.ok()) {
      std::fprintf(stderr, "workload generation failed\n");
      return 1;
    }
    HybridWarehouse hw(make_sim());
    if (!LoadWorkload(&hw, *workload).ok()) return 1;
    const HybridQuery query = workload->MakeQuery();
    auto ref = RunReferenceJoin({workload->t_rows()}, workload->l_batches(),
                                query);
    if (!ref.ok()) return 1;
    reference = *ref;

    auto est = EstimateQuery(&hw.context(), query);
    if (!est.ok()) return 1;
    est_misled = est->db_filtered_bytes == 0;
    const Advice initial = AdviseAlgorithm(hw.context(), *est);
    mispick = initial.algorithm;
    std::printf("misleading cell: %s\n", initial.ToString().c_str());

    if (!run_point("mislead_static_mispick",
                   [&] { return hw.Execute(query, mispick); })) {
      return 1;
    }
    if (!run_point("mislead_adaptive",
                   [&] { return hw.ExecuteAuto(query, &mislead_advice); })) {
      return 1;
    }
    oracle_pick = mislead_advice.final_algorithm;
    std::printf("misleading cell: %s\n", mislead_advice.ToString().c_str());
    if (!run_point("mislead_oracle",
                   [&] { return hw.Execute(query, oracle_pick); })) {
      return 1;
    }
  }

  // ---------------- Cell 2: accurate statistics ----------------
  Advice accurate_advice;
  {
    auto workload = Workload::Generate(config.workload, spec);
    if (!workload.ok()) return 1;
    HybridWarehouse hw(make_sim());
    if (!LoadWorkload(&hw, *workload).ok()) return 1;
    const HybridQuery query = workload->MakeQuery();
    auto ref = RunReferenceJoin({workload->t_rows()}, workload->l_batches(),
                                query);
    if (!ref.ok()) return 1;
    reference = *ref;

    // Decide first, then measure the static twin of the same pick.
    if (!run_point("accurate_adaptive",
                   [&] { return hw.ExecuteAuto(query, &accurate_advice); })) {
      return 1;
    }
    std::printf("accurate cell: %s\n", accurate_advice.ToString().c_str());
    if (!run_point("accurate_static", [&] {
          return hw.Execute(query, accurate_advice.final_algorithm);
        })) {
      return 1;
    }
  }

  // sweep layout: [mislead_static_mispick, mislead_adaptive, mislead_oracle,
  //                accurate_adaptive, accurate_static]
  const Point& p_mispick = sweep[0];
  const Point& p_adaptive = sweep[1];
  const Point& p_oracle = sweep[2];
  const Point& p_acc_adaptive = sweep[3];
  const Point& p_acc_static = sweep[4];

  std::printf("%24s %12s %8s %10s %14s %14s %6s\n", "point", "algorithm",
              "pivoted", "wall(s)", "est T' bytes", "obs T' bytes", "match");
  for (const Point& p : sweep) {
    std::printf("%24s %12s %8d %10.3f %14lld %14lld %6s\n", p.name.c_str(),
                p.algorithm.c_str(), p.pivoted ? 1 : 0, p.wall_seconds,
                static_cast<long long>(p.est_db_bytes),
                static_cast<long long>(p.obs_db_bytes),
                p.match ? "ok" : "MISMATCH");
  }

  const double gap = p_mispick.wall_seconds - p_oracle.wall_seconds;
  const double gap_recovery =
      gap > 0 ? (p_mispick.wall_seconds - p_adaptive.wall_seconds) / gap : 0;
  const double overhead_pct =
      p_acc_static.wall_seconds > 0
          ? 100.0 * (p_acc_adaptive.wall_seconds - p_acc_static.wall_seconds) /
                p_acc_static.wall_seconds
          : 0;
  std::printf("gap recovery: %.0f%%  (mispick %.3fs, adaptive %.3fs, "
              "oracle %.3fs)\n",
              gap_recovery * 100.0, p_mispick.wall_seconds,
              p_adaptive.wall_seconds, p_oracle.wall_seconds);
  std::printf("accurate-stats overhead: %.1f%%  (adaptive %.3fs vs static "
              "%.3fs)\n",
              overhead_pct, p_acc_adaptive.wall_seconds,
              p_acc_static.wall_seconds);

  ShapeCheck("clustered layout misleads the estimator (est T' = 0)",
             est_misled);
  ShapeCheck("misled advisor picks broadcast",
             mispick == JoinAlgorithm::kBroadcast);
  ShapeCheck("decision point pivots off the mispick",
             mislead_advice.pivoted && p_adaptive.pivoted &&
                 oracle_pick != mispick);
  ShapeCheck("adaptive recovers >= 50% of the mispick-vs-oracle gap",
             gap_recovery >= 0.5);
  ShapeCheck("accurate stats stay on the initial pick",
             !accurate_advice.pivoted && !p_acc_adaptive.pivoted);
  ShapeCheck("accurate-stats overhead <= 5%", overhead_pct <= 5.0);
  ShapeCheck("every run matches the single-node reference", all_match);

  const int json_rc = WriteJson(out_path, sweep, gap_recovery, overhead_pct);
  if (json_rc != 0) return json_rc;
  return all_match ? 0 : 1;
}
