// Figure 12 — "DB-side join vs HDFS-side join without Bloom filter:
// execution time (sec)".
//   (a) sigma_T = 0.05;  (b) sigma_T = 0.1.
// sigma_L in {0.001, 0.01, 0.1, 0.2}; hdfs-best = best of broadcast and
// plain repartition (repartition wins everywhere in the paper's figure).
//
// Paper's shape: the DB-side join wins only for very selective HDFS
// predicates (sigma_L <= 0.01); beyond that it deteriorates steeply while
// the HDFS-side join stays nearly flat.

#include "bench_common.h"

using namespace hybridjoin;
using namespace hybridjoin::bench;

namespace {

void RunSubfigure(const BenchConfig& config, const char* label,
                  double sigma_t) {
  std::printf("\n--- Figure 12(%s): sigma_T=%.2f ---\n", label, sigma_t);
  std::printf("%8s %8s %13s\n", "sigma_L", "db(s)", "hdfs-best(s)");
  std::vector<double> db_times;
  std::vector<double> hdfs_times;
  for (double sigma_l : {0.001, 0.01, 0.1, 0.2}) {
    const SelectivitySpec spec{sigma_t, sigma_l, 0.5, 0.5};
    auto cell = BenchCell::Create(config, spec, HdfsFormat::kColumnar);
    if (cell == nullptr) continue;
    const double db = cell->Run(JoinAlgorithm::kDbSide);
    const double repart = cell->Run(JoinAlgorithm::kRepartition);
    const double bcast = cell->Run(JoinAlgorithm::kBroadcast);
    const double hdfs_best = std::min(repart, bcast);
    std::printf("%8.3f %8.3f %13.3f\n", sigma_l, db, hdfs_best);
    db_times.push_back(db);
    hdfs_times.push_back(hdfs_best);
  }
  if (db_times.size() < 4) return;
  ShapeCheck("db-side competitive at sigma_L <= 0.01",
             db_times[0] <= hdfs_times[0] * 1.3 ||
                 db_times[1] <= hdfs_times[1] * 1.3);
  ShapeCheck("hdfs-side wins at sigma_L = 0.2",
             hdfs_times[3] < db_times[3]);
  ShapeCheck("db-side deteriorates faster than hdfs-side",
             (db_times[3] - db_times[0]) > (hdfs_times[3] - hdfs_times[0]));
}

}  // namespace

int main() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintPreamble("Figure 12",
                "DB-side vs best HDFS-side join, no Bloom filters", config);
  RunSubfigure(config, "a", 0.05);
  RunSubfigure(config, "b", 0.1);
  return 0;
}
