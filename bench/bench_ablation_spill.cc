// Ablation — memory-governed joins (the paper's §4.4 future work): a
// memory-pressure sweep of the zigzag join under a per-query
// MemoryGovernor budget, from 8x the reference footprint down to 1/8x.
// Every budgeted run's result is compared byte-for-byte against the
// unlimited run, so the sweep doubles as a correctness harness: spilling,
// recursive repartitioning and the block-nested-loop fallback must never
// change the answer, only the spill traffic and the time.
//
// The reference footprint is the unlimited run's own join.mem_peak_bytes
// gauge — an upper bound on the build side, so the 8x point never spills
// and the fractional points are under genuine pressure.
//
// Writes BENCH_spill.json (path overridable with --out=PATH) in the same
// perfcheck-gateable shape as the other bench artifacts: wall_seconds and
// *_bytes leaves are gated, "match" is a hard correctness bit (the bench
// exits 1 itself on any mismatch, so the committed baseline always has
// match=1 everywhere).

#include "bench_common.h"

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "exec/spill.h"
#include "testing/differential.h"

using namespace hybridjoin;
using namespace hybridjoin::bench;

namespace {

struct SweepPoint {
  std::string name;          ///< perfcheck array key, e.g. "budget_8x"
  uint64_t budget_bytes = 0; ///< 0 = unlimited (the reference row)
  double wall_seconds = 0;
  int64_t spill_bytes = 0;
  int64_t spill_partitions = 0;
  int64_t repartition_depth = 0;
  int64_t mem_peak_bytes = 0;
  size_t rows = 0;
  bool match = true;  ///< byte-for-byte equal to the unlimited run
  std::unique_ptr<RecordBatch> batch;  ///< result rows, for the comparison
};

int WriteJson(const std::string& path, int64_t ref_bytes,
              const std::vector<SweepPoint>& sweep) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"spill\": {\n");
  std::fprintf(f, "    \"ref_peak_bytes\": %lld,\n    \"sweep\": [\n",
               static_cast<long long>(ref_bytes));
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    std::fprintf(
        f,
        "      {\"name\": \"%s\", \"budget_bytes\": %llu, "
        "\"wall_seconds\": %.6f, \"spill_bytes\": %lld, "
        "\"spill_partitions\": %lld, \"repartition_depth\": %lld, "
        "\"mem_peak_bytes\": %lld, \"rows\": %zu, \"match\": %d}%s\n",
        p.name.c_str(), static_cast<unsigned long long>(p.budget_bytes),
        p.wall_seconds, static_cast<long long>(p.spill_bytes),
        static_cast<long long>(p.spill_partitions),
        static_cast<long long>(p.repartition_depth),
        static_cast<long long>(p.mem_peak_bytes), p.rows, p.match ? 1 : 0,
        i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_spill.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  const BenchConfig config = BenchConfig::FromEnv();
  PrintPreamble("Ablation: memory-pressure spilling",
                "zigzag under a per-query MemoryGovernor budget "
                "(grace hash join, 8x .. 1/8x of the unlimited peak)",
                config);
  const SelectivitySpec spec{0.1, 0.4, 0.5, 0.5};
  auto workload = Workload::Generate(config.workload, spec);
  if (!workload.ok()) return 1;
  const HybridQuery query = workload->MakeQuery();

  // One run of one sweep point: fresh warehouse (so the page cache and the
  // spill area start cold at every budget), warm run discarded, best of two
  // measured runs reported.
  auto run_point = [&](uint64_t budget_bytes, SweepPoint* out) -> bool {
    SimulationConfig sim = MakeSimConfig(config);
    sim.query_memory_budget_bytes = budget_bytes;
    sim.jen.grace_partitions = 16;
    // A single (slower) spill disk per worker.
    sim.jen.spill_write_bps = sim.datanode.disk_read_bps / 4;
    sim.jen.spill_read_bps = sim.datanode.disk_read_bps / 4;
    HybridWarehouse hw(sim);
    LoadOptions load;
    load.hdfs.rows_per_block = 32 * 1024;
    if (!LoadWorkload(&hw, *workload, load).ok()) return false;
    if (!hw.Execute(query, JoinAlgorithm::kZigzag).ok()) return false;
    double best = 1e100;
    ExecutionReport report;
    RecordBatch rows;
    for (int i = 0; i < 2; ++i) {
      auto result = hw.Execute(query, JoinAlgorithm::kZigzag);
      if (!result.ok()) {
        std::fprintf(stderr, "run failed (budget=%llu): %s\n",
                     static_cast<unsigned long long>(budget_bytes),
                     result.status().ToString().c_str());
        return false;
      }
      if (result->report.wall_seconds < best) {
        best = result->report.wall_seconds;
        report = result->report;
      }
      rows = result->rows;
    }
    out->budget_bytes = budget_bytes;
    out->wall_seconds = best;
    out->spill_bytes = report.Counter(metric::kSpillBytesWritten);
    out->spill_partitions = report.Counter(metric::kSpilledPartitions);
    out->repartition_depth = report.Counter(metric::kJoinRepartitionDepth);
    // The peak gauge is a high-water mark, not an additive counter, so the
    // report's delta view of it is meaningless across the warm-up run; the
    // per-query profile carries the real per-execution value.
    const auto* peak =
        report.profile.FindCounter("driver", metric::kJoinMemPeakBytes);
    out->mem_peak_bytes = peak != nullptr ? peak->total : 0;
    out->rows = rows.num_rows();
    out->batch = std::make_unique<RecordBatch>(std::move(rows));
    return true;
  };

  // Reference: unlimited budget. Its mem-peak gauge scales the sweep and
  // its rows are the oracle every budgeted run must reproduce exactly.
  SweepPoint unlimited;
  unlimited.name = "unlimited";
  if (!run_point(0, &unlimited)) return 1;
  const int64_t ref_bytes =
      unlimited.mem_peak_bytes > 0 ? unlimited.mem_peak_bytes : 1;

  struct Mult {
    const char* name;
    double factor;
  };
  constexpr Mult kSweep[] = {{"budget_8x", 8.0},       {"budget_4x", 4.0},
                             {"budget_2x", 2.0},       {"budget_1x", 1.0},
                             {"budget_1_2x", 1.0 / 2}, {"budget_1_4x", 1.0 / 4},
                             {"budget_1_8x", 1.0 / 8}};

  std::vector<SweepPoint> sweep;
  sweep.push_back(std::move(unlimited));
  bool all_match = true;
  for (const Mult& m : kSweep) {
    SweepPoint p;
    p.name = m.name;
    const uint64_t budget = static_cast<uint64_t>(
        static_cast<double>(ref_bytes) * m.factor);
    if (!run_point(budget, &p)) return 1;
    auto diff = testing_support::CompareBatches(*sweep.front().batch,
                                                *p.batch);
    p.match = !diff.has_value();
    if (!p.match) {
      all_match = false;
      std::fprintf(stderr, "MISMATCH at %s (budget=%llu): %s\n", p.name.c_str(),
                   static_cast<unsigned long long>(budget), diff->c_str());
    }
    sweep.push_back(std::move(p));
  }

  std::printf("%14s %14s %10s %12s %12s %8s %14s %6s\n", "point",
              "budget (KiB)", "wall(s)", "spill KiB", "spill part.",
              "depth", "peak (KiB)", "match");
  for (const SweepPoint& p : sweep) {
    std::printf("%14s %14llu %10.3f %12.1f %12lld %8lld %14.1f %6s\n",
                p.name.c_str(),
                static_cast<unsigned long long>(p.budget_bytes / 1024),
                p.wall_seconds, p.spill_bytes / 1024.0,
                static_cast<long long>(p.spill_partitions),
                static_cast<long long>(p.repartition_depth),
                p.mem_peak_bytes / 1024.0, p.match ? "ok" : "MISMATCH");
  }

  const SweepPoint& loose = sweep[1];   // 8x: fits comfortably
  const SweepPoint& tight = sweep.back();  // 1/8x: deep pressure
  ShapeCheck("8x budget completes without spilling",
             loose.spill_bytes == 0 && loose.spill_partitions == 0);
  ShapeCheck("1/8x budget forces spilling", tight.spill_bytes > 0);
  ShapeCheck("full spilling costs time vs the loosest budget",
             tight.wall_seconds > loose.wall_seconds);
  ShapeCheck("every budgeted run matches the unlimited run", all_match);

  const int json_rc = WriteJson(out_path, ref_bytes, sweep);
  if (json_rc != 0) return json_rc;
  return all_match ? 0 : 1;
}
