// Ablation — memory-bounded joins (the paper's §4.4 future work): sweep
// the JEN worker join-memory budget for the zigzag join and measure the
// spill traffic and the cost of losing the fully-resident hash table.
// With a throttled spill disk, the curve shows the classic hybrid-hash
// cliff: once the budget falls below the build side, spilled bytes (and
// time) grow until everything round-trips the spill disk.

#include "bench_common.h"

#include "exec/spill.h"

using namespace hybridjoin;
using namespace hybridjoin::bench;

int main() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintPreamble("Ablation: join spilling",
                "zigzag under a join-memory budget (Grace/hybrid hash)",
                config);
  const SelectivitySpec spec{0.1, 0.4, 0.5, 0.5};
  auto workload = Workload::Generate(config.workload, spec);
  if (!workload.ok()) return 1;

  std::printf("%14s %10s %12s %14s %12s\n", "budget (KiB)", "zigzag(s)",
              "spilled part.", "spill MB wr.", "result rows");
  double no_spill_time = 0;
  double tiny_time = 0;
  // 0 = unlimited, then a sweep downwards.
  for (uint64_t budget_kib : {0ULL, 4096ULL, 512ULL, 64ULL, 4ULL}) {
    SimulationConfig sim = MakeSimConfig(config);
    sim.jen.join_memory_budget_bytes = budget_kib * 1024;
    sim.jen.grace_partitions = 16;
    // A single (slower) spill disk per worker.
    sim.jen.spill_write_bps = sim.datanode.disk_read_bps / 4;
    sim.jen.spill_read_bps = sim.datanode.disk_read_bps / 4;
    HybridWarehouse hw(sim);
    LoadOptions load;
    load.hdfs.rows_per_block = 32 * 1024;
    if (!LoadWorkload(&hw, *workload, load).ok()) return 1;
    const HybridQuery query = workload->MakeQuery();
    if (!hw.Execute(query, JoinAlgorithm::kZigzag).ok()) return 1;  // warm
    double best = 1e100;
    ExecutionReport report;
    size_t rows = 0;
    for (int i = 0; i < 2; ++i) {
      auto result = hw.Execute(query, JoinAlgorithm::kZigzag);
      if (!result.ok()) {
        std::fprintf(stderr, "run failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      if (result->report.wall_seconds < best) {
        best = result->report.wall_seconds;
        report = result->report;
      }
      rows = result->rows.num_rows();
    }
    std::printf("%14llu %10.3f %12lld %13.2f %12zu\n",
                static_cast<unsigned long long>(budget_kib), best,
                static_cast<long long>(
                    report.Counter(metric::kSpilledPartitions)),
                report.Counter(metric::kSpillBytesWritten) / 1048576.0,
                rows);
    if (budget_kib == 4096) no_spill_time = best;
    if (budget_kib == 4) tiny_time = best;
  }
  std::printf("note: the budget=0 row uses the single monolithic hash "
              "table (the paper's JEN); the partitioned no-spill rows "
              "can be faster on one core thanks to radix-style cache "
              "locality.\n");
  ShapeCheck("full spilling costs time vs the resident Grace join",
             tiny_time > no_spill_time * 1.1);
  return 0;
}
