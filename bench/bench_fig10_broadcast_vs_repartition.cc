// Figure 10 — "Broadcast join vs repartition join: execution time (sec)".
//   (a) sigma_T = 0.001;  (b) sigma_T = 0.01.
// sigma_L in {0.001, 0.01, 0.1, 0.2}.
//
// Paper's shape: broadcast wins only when T' is very small (sigma_T <=
// 0.001 in their setup); the repartition join is the more stable algorithm
// and overtakes broadcast as sigma_T grows.

#include "bench_common.h"

using namespace hybridjoin;
using namespace hybridjoin::bench;

namespace {

/// Ratio broadcast/repartition averaged over the sigma_L sweep.
double RunSubfigure(const BenchConfig& config, const char* label,
                    double sigma_t) {
  std::printf("\n--- Figure 10(%s): sigma_T=%.3f ---\n", label, sigma_t);
  std::printf("%8s %13s %15s\n", "sigma_L", "broadcast(s)",
              "repartition(s)");
  double ratio_sum = 0;
  int cells = 0;
  for (double sigma_l : {0.001, 0.01, 0.1, 0.2}) {
    // Join-key selectivities play no role here; use neutral values.
    const SelectivitySpec spec{sigma_t, sigma_l, 1.0, 1.0};
    auto cell = BenchCell::Create(config, spec, HdfsFormat::kColumnar);
    if (cell == nullptr) continue;
    const double broadcast = cell->Run(JoinAlgorithm::kBroadcast);
    const double repart = cell->Run(JoinAlgorithm::kRepartition);
    std::printf("%8.3f %13.3f %15.3f\n", sigma_l, broadcast, repart);
    ratio_sum += broadcast / repart;
    ++cells;
  }
  return cells == 0 ? 0 : ratio_sum / cells;
}

}  // namespace

int main() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintPreamble("Figure 10", "broadcast join vs repartition join", config);
  const double tiny_t = RunSubfigure(config, "a", 0.001);
  const double small_t = RunSubfigure(config, "b", 0.01);
  // Extension beyond the paper's two panels: with only a handful of JEN
  // workers the broadcast penalty factor (n copies of T') is much smaller
  // than with the paper's 30 nodes, so we add a third sigma_T point where
  // the crossover becomes unmistakable at this scale.
  const double big_t = RunSubfigure(config, "c, ours", 0.05);
  std::printf("\nmean broadcast/repartition ratio: sigma_T=0.001 -> %.2f, "
              "sigma_T=0.01 -> %.2f, sigma_T=0.05 -> %.2f\n",
              tiny_t, small_t, big_t);
  ShapeCheck("broadcast competitive for very selective sigma_T (<= ~1x)",
             tiny_t <= 1.15);
  ShapeCheck("broadcast clearly loses once T' stops being tiny",
             big_t > 1.15 && big_t > tiny_t);
  return 0;
}
