// Shared harness for the paper-reproduction benches: builds a throttled
// two-cluster warehouse per (selectivity, format) cell, loads the scaled
// workload, and measures warm runs of each algorithm, mirroring the
// methodology of §5 (multiple runs, first run excluded).
//
// Environment overrides:
//   HJ_BENCH_TROWS / HJ_BENCH_LROWS / HJ_BENCH_KEYS   workload scale
//   HJ_BENCH_DBW / HJ_BENCH_JENW                      worker counts
//   HJ_BENCH_REPEATS                                  measured runs per cell
//   HJ_BENCH_SMOKE=1                                  tiny everything (CI)

#ifndef HYBRIDJOIN_BENCH_BENCH_COMMON_H_
#define HYBRIDJOIN_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "hybrid/warehouse.h"
#include "workload/loader.h"

namespace hybridjoin {
namespace bench {

struct BenchConfig {
  WorkloadConfig workload;
  uint32_t db_workers = 4;
  uint32_t jen_workers = 4;
  int repeats = 1;

  static BenchConfig FromEnv() {
    BenchConfig c;
    c.workload.num_join_keys = 8192;
    c.workload.t_rows = 512 * 1024;
    c.workload.l_rows = 1200 * 1024;
    c.workload.num_groups = 200;
    auto env_u64 = [](const char* name, uint64_t* out) {
      if (const char* v = std::getenv(name)) *out = std::strtoull(v, nullptr, 10);
    };
    if (const char* smoke = std::getenv("HJ_BENCH_SMOKE");
        smoke != nullptr && smoke[0] == '1') {
      c.workload.num_join_keys = 1024;
      c.workload.t_rows = 12000;
      c.workload.l_rows = 48000;
    }
    env_u64("HJ_BENCH_TROWS", &c.workload.t_rows);
    env_u64("HJ_BENCH_LROWS", &c.workload.l_rows);
    env_u64("HJ_BENCH_KEYS", &c.workload.num_join_keys);
    uint64_t tmp;
    if (const char* v = std::getenv("HJ_BENCH_DBW")) {
      tmp = std::strtoull(v, nullptr, 10);
      c.db_workers = static_cast<uint32_t>(tmp);
    }
    if (const char* v = std::getenv("HJ_BENCH_JENW")) {
      tmp = std::strtoull(v, nullptr, 10);
      c.jen_workers = static_cast<uint32_t>(tmp);
    }
    if (const char* v = std::getenv("HJ_BENCH_REPEATS")) {
      c.repeats = std::atoi(v);
      if (c.repeats < 1) c.repeats = 1;
    }
    return c;
  }
};

/// The scaled testbed bandwidths (see DESIGN.md for the derivation from the
/// paper's 1 GbE / 10 GbE / 20 Gbit / 4-disk configuration).
inline SimulationConfig MakeSimConfig(const BenchConfig& bench) {
  auto mb = [](double v) {
    return static_cast<uint64_t>(v * 1024.0 * 1024.0);
  };
  SimulationConfig c;
  c.db.num_workers = bench.db_workers;
  c.jen_workers = bench.jen_workers;
  c.bloom.expected_keys = bench.workload.num_join_keys;
  c.datanode.num_disks = 2;
  c.datanode.disk_read_bps = mb(8);     // cold sequential, per disk
  c.datanode.cache_read_bps = mb(60);   // warm page-cache reads
  c.net.hdfs_nic_bps = mb(12);          // "1 GbE" class
  // Effective per-DB-worker ingest/exchange bandwidth. Deliberately low:
  // the paper under-provisions the DPF cluster ("to mimic the case that
  // the database is more heavily utilized") and ingesting HDFS rows into
  // the EDW costs UDF processing + an internal reshuffle on top of raw
  // network transfer.
  c.net.db_nic_bps = mb(0.25);
  c.net.cross_switch_bps = mb(16);      // "20 Gbit" inter-cluster switch
  c.jen.send_threads = 1;               // modest host parallelism
  return c;
}

/// One (selectivity, format) cell: generated data loaded into a throttled
/// warehouse, ready to run algorithms on.
class BenchCell {
 public:
  static std::unique_ptr<BenchCell> Create(const BenchConfig& bench,
                                           const SelectivitySpec& spec,
                                           HdfsFormat format) {
    auto cell = std::make_unique<BenchCell>();
    cell->bench_ = bench;
    auto workload = Workload::Generate(bench.workload, spec);
    if (!workload.ok()) {
      std::fprintf(stderr, "workload generation failed: %s\n",
                   workload.status().ToString().c_str());
      return nullptr;
    }
    cell->workload_ = std::make_unique<Workload>(std::move(*workload));
    cell->warehouse_ =
        std::make_unique<HybridWarehouse>(MakeSimConfig(bench));
    LoadOptions load;
    load.hdfs.format = format;
    load.hdfs.rows_per_block = 32 * 1024;
    const Status st = LoadWorkload(cell->warehouse_.get(),
                                   *cell->workload_, load);
    if (!st.ok()) {
      std::fprintf(stderr, "workload load failed: %s\n",
                   st.ToString().c_str());
      return nullptr;
    }

    // Page-cache sizing (paper §5.4): the columnar table fits in memory,
    // the raw text table does not. We give each node a cache of ~40% of
    // its text footprint, which comfortably holds the columnar chunks but
    // thrashes on text scans.
    EngineContext& ctx = cell->warehouse_->context();
    auto file_size = ctx.namenode().FileSize("/warehouse/L");
    if (file_size.ok()) {
      const uint64_t per_node =
          *file_size * ctx.config().hdfs_replication / bench.jen_workers;
      uint64_t capacity;
      if (format == HdfsFormat::kText) {
        capacity = static_cast<uint64_t>(per_node * 0.4);
      } else {
        capacity = per_node * 4;
      }
      for (uint32_t i = 0; i < bench.jen_workers; ++i) {
        ctx.datanode(i)->SetCacheCapacity(capacity);
      }
    }
    return cell;
  }

  const Workload& workload() const { return *workload_; }
  HybridWarehouse& warehouse() { return *warehouse_; }

  /// Warm run (discarded, paper methodology) + measured runs; returns the
  /// minimum (stablest point estimate on a shared host) and the last report.
  double Run(JoinAlgorithm algorithm, ExecutionReport* report = nullptr) {
    const HybridQuery query = workload_->MakeQuery();
    auto warm = warehouse_->Execute(query, algorithm);
    if (!warm.ok()) {
      std::fprintf(stderr, "run failed (%s): %s\n",
                   JoinAlgorithmName(algorithm),
                   warm.status().ToString().c_str());
      return -1;
    }
    const int runs = std::max(bench_.repeats, 2);
    double best = 1e100;
    for (int i = 0; i < runs; ++i) {
      auto result = warehouse_->Execute(query, algorithm);
      if (!result.ok()) return -1;
      best = std::min(best, result->report.wall_seconds);
      if (report != nullptr && i == runs - 1) {
        *report = result->report;
      }
    }
    return best;
  }

  BenchConfig bench_;
  std::unique_ptr<Workload> workload_;
  std::unique_ptr<HybridWarehouse> warehouse_;
};

/// Header printed by every figure bench.
inline void PrintPreamble(const char* exhibit, const char* description,
                          const BenchConfig& bench) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", exhibit, description);
  std::printf(
      "workload: %llu T rows, %llu L rows, %llu join keys; "
      "%u DB workers, %u JEN workers, %d repeat(s)\n",
      static_cast<unsigned long long>(bench.workload.t_rows),
      static_cast<unsigned long long>(bench.workload.l_rows),
      static_cast<unsigned long long>(bench.workload.num_join_keys),
      bench.db_workers, bench.jen_workers, bench.repeats);
  std::printf("==========================================================\n");
}

/// Records a qualitative shape check ("who wins") in the output.
inline void ShapeCheck(const char* claim, bool holds) {
  std::printf("shape-check: %-58s %s\n", claim, holds ? "[OK]" : "[MISS]");
}

}  // namespace bench
}  // namespace hybridjoin

#endif  // HYBRIDJOIN_BENCH_BENCH_COMMON_H_
