// Figure 13 — "DB-side join vs HDFS-side join with Bloom filter:
// execution time (sec)".
//   (a) sigma_T = 0.05;  (b) sigma_T = 0.1.
// db-best = db(BF) (best DB-side variant), hdfs-best = zigzag (best
// HDFS-side variant) in most of the paper's cells.
//
// Paper's shape: same crossover as Figure 12 — Bloom filters lift both
// sides, but the zigzag join's flat curve makes it the reliable choice
// once sigma_L isn't tiny.

#include "bench_common.h"

using namespace hybridjoin;
using namespace hybridjoin::bench;

namespace {

void RunSubfigure(const BenchConfig& config, const char* label,
                  double sigma_t) {
  std::printf("\n--- Figure 13(%s): sigma_T=%.2f ---\n", label, sigma_t);
  std::printf("%8s %12s %14s\n", "sigma_L", "db-best(s)", "hdfs-best(s)");
  std::vector<double> db_times;
  std::vector<double> hdfs_times;
  for (double sigma_l : {0.001, 0.01, 0.1, 0.2}) {
    const SelectivitySpec spec{sigma_t, sigma_l, 0.5, 0.5};
    auto cell = BenchCell::Create(config, spec, HdfsFormat::kColumnar);
    if (cell == nullptr) continue;
    const double db_best = std::min(cell->Run(JoinAlgorithm::kDbSideBloom),
                                    cell->Run(JoinAlgorithm::kDbSide));
    const double hdfs_best =
        std::min({cell->Run(JoinAlgorithm::kZigzag),
                  cell->Run(JoinAlgorithm::kRepartitionBloom),
                  cell->Run(JoinAlgorithm::kBroadcast)});
    std::printf("%8.3f %12.3f %14.3f\n", sigma_l, db_best, hdfs_best);
    db_times.push_back(db_best);
    hdfs_times.push_back(hdfs_best);
  }
  if (db_times.size() < 4) return;
  const double db_slope = db_times[3] / db_times[0];
  const double hdfs_slope = hdfs_times[3] / hdfs_times[0];
  std::printf("growth sigma_L 0.001 -> 0.2: db-best %.2fx, hdfs-best %.2fx\n",
              db_slope, hdfs_slope);
  ShapeCheck("hdfs-best (zigzag) stays flatter than db-best",
             hdfs_slope < db_slope);
  ShapeCheck("hdfs-best wins at sigma_L = 0.2",
             hdfs_times[3] < db_times[3]);
}

}  // namespace

int main() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintPreamble("Figure 13",
                "best DB-side vs best HDFS-side join, with Bloom filters",
                config);
  RunSubfigure(config, "a", 0.05);
  RunSubfigure(config, "b", 0.1);
  return 0;
}
