// Figure 9 — "Zigzag join (sigma_T=0.1, sigma_L=0.4) with different S_L'
// and S_T' values: execution time (sec)".
//   (a) S_T' = 0.5, S_L' in {0.8, 0.4, 0.1}
//   (b) S_L' = 0.4, S_T' in {0.5, 0.35, 0.2}
//
// Paper's shape: with T' and L' fixed, the zigzag join gets faster as
// either join-key selectivity shrinks (more pruning), while the two
// repartition variants stay roughly flat (repartition(BF) tracks S_L'
// only).

#include "bench_common.h"

using namespace hybridjoin;
using namespace hybridjoin::bench;

namespace {

struct Measurement {
  double repart;
  double repart_bf;
  double zigzag;
  int64_t zz_shuffled;
  int64_t zz_sent;
};

Measurement RunCell(const BenchConfig& config, const SelectivitySpec& spec) {
  Measurement m{};
  auto cell = BenchCell::Create(config, spec, HdfsFormat::kColumnar);
  if (cell == nullptr) return m;
  m.repart = cell->Run(JoinAlgorithm::kRepartition);
  m.repart_bf = cell->Run(JoinAlgorithm::kRepartitionBloom);
  ExecutionReport report;
  m.zigzag = cell->Run(JoinAlgorithm::kZigzag, &report);
  m.zz_shuffled = report.Counter(metric::kHdfsTuplesShuffled);
  m.zz_sent = report.Counter(metric::kDbTuplesSent);
  return m;
}

}  // namespace

int main() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintPreamble("Figure 9",
                "zigzag sensitivity to join-key selectivities "
                "(sigma_T=0.1, sigma_L=0.4)",
                config);

  std::printf("\n--- Figure 9(a): S_T' = 0.5, varying S_L' ---\n");
  std::printf("%6s %15s %18s %10s %14s %12s\n", "S_L'", "repartition(s)",
              "repartition(BF)(s)", "zigzag(s)", "zz shuffled", "zz sent");
  std::vector<double> zz_a;
  for (double sl : {0.8, 0.4, 0.1}) {
    const Measurement m = RunCell(config, {0.1, 0.4, 0.5, sl});
    std::printf("%6.2f %15.3f %18.3f %10.3f %14lld %12lld\n", sl, m.repart,
                m.repart_bf, m.zigzag, static_cast<long long>(m.zz_shuffled),
                static_cast<long long>(m.zz_sent));
    zz_a.push_back(m.zigzag);
  }
  ShapeCheck("zigzag improves as S_L' shrinks (0.8 -> 0.1)",
             zz_a.front() > zz_a.back());

  std::printf("\n--- Figure 9(b): S_L' = 0.4, varying S_T' ---\n");
  std::printf("%6s %15s %18s %10s %14s %12s\n", "S_T'", "repartition(s)",
              "repartition(BF)(s)", "zigzag(s)", "zz shuffled", "zz sent");
  std::vector<int64_t> sent_b;
  std::vector<double> zz_b;
  for (double st : {0.5, 0.35, 0.2}) {
    const Measurement m = RunCell(config, {0.1, 0.4, st, 0.4});
    std::printf("%6.2f %15.3f %18.3f %10.3f %14lld %12lld\n", st, m.repart,
                m.repart_bf, m.zigzag, static_cast<long long>(m.zz_shuffled),
                static_cast<long long>(m.zz_sent));
    sent_b.push_back(m.zz_sent);
    zz_b.push_back(m.zigzag);
  }
  ShapeCheck("zigzag's DB transfer shrinks with S_T'",
             sent_b.front() > sent_b.back());
  ShapeCheck("zigzag time does not grow as S_T' shrinks",
             zz_b.back() <= zz_b.front() * 1.15);
  return 0;
}
