// Figure 14 — "Parquet format vs text format: execution time (sec)".
//   (a) zigzag join, sigma_T = 0.1;  (b) db(BF) join, sigma_T = 0.1.
// sigma_L in {0.001, 0.01, 0.1, 0.2}.
//
// Paper's shape: both algorithms run significantly faster on the columnar
// format — the 1 TB text table exceeds cluster memory and is disk-bound
// (~240 s scans) while the 421 GB columnar table fits in page cache and is
// also reduced by projection pushdown (~38 s scans).

#include "bench_common.h"

using namespace hybridjoin;
using namespace hybridjoin::bench;

namespace {

void RunSubfigure(const BenchConfig& config, const char* label,
                  JoinAlgorithm algorithm, double sl) {
  std::printf("\n--- Figure 14(%s): %s, sigma_T=0.1, S_L'=%.1f ---\n",
              label, JoinAlgorithmName(algorithm), sl);
  std::printf("%8s %9s %12s %10s\n", "sigma_L", "text(s)", "columnar(s)",
              "speedup");
  double worst_speedup = 1e9;
  for (double sigma_l : {0.001, 0.01, 0.1, 0.2}) {
    const SelectivitySpec spec{0.1, sigma_l, 0.5, sl};
    auto text_cell = BenchCell::Create(config, spec, HdfsFormat::kText);
    auto col_cell = BenchCell::Create(config, spec, HdfsFormat::kColumnar);
    if (text_cell == nullptr || col_cell == nullptr) continue;
    const double text = text_cell->Run(algorithm);
    const double columnar = col_cell->Run(algorithm);
    std::printf("%8.3f %9.3f %12.3f %9.2fx\n", sigma_l, text, columnar,
                text / columnar);
    worst_speedup = std::min(worst_speedup, text / columnar);
  }
  ShapeCheck("columnar faster than text in every cell", worst_speedup > 1.0);
  ShapeCheck("columnar speedup is substantial (> 1.3x everywhere)",
             worst_speedup > 1.3);
}

}  // namespace

int main() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintPreamble("Figure 14", "columnar (Parquet-style) vs text format",
                config);
  RunSubfigure(config, "a", JoinAlgorithm::kZigzag, 0.5);
  // The db(BF) panel pairs with the selective S_L' = 0.1 of Figure 11(b),
  // so the L'' ingest does not drown out the scan-format effect.
  RunSubfigure(config, "b", JoinAlgorithm::kDbSideBloom, 0.1);
  return 0;
}
