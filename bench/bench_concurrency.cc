// Concurrency benchmark for the multi-query warehouse server
// (docs/architecture.md, "Warehouse server & admission control"): N client
// streams push the paper's query through one WarehouseServer and the sweep
// reports queries/sec and p50/p99 latency at 1/4/16/64 streams, plus a
// deterministic admission scenario showing queries past the concurrency
// limit queueing and then being shed on deadline (never crashing), plus an
// observability-overhead cell (16 streams plain vs with the full plane on;
// overhead_pct gated by tools/perfcheck --max_overhead_pct). Writes
// BENCH_concurrency.json (path overridable with --out=PATH) in the same
// perfcheck-gateable shape as the fig-8 artifact: *_us and *_seconds leaves
// are wall-family gated, queries_per_second is an ungated trend column.
//
// With >1 query in flight the substrate overlaps executions, so 4-stream
// throughput above 1-stream throughput is the headline check (asserted
// softly here — wall-clock on shared CI runners is a trend artifact).
//
// Environment overrides: HJ_BENCH_SMOKE=1 shrinks everything for CI smoke.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/stopwatch.h"
#include "server/warehouse_server.h"
#include "workload/loader.h"

namespace hybridjoin {
namespace {

const char kQuery[] =
    "SELECT extract_group(L.groupByExtractCol), COUNT(*) "
    "FROM T, L "
    "WHERE T.corPred < 200000 AND L.corPred < 400000 "
    "  AND T.joinKey = L.joinKey "
    "  AND T.predAfterJoin - L.predAfterJoin BETWEEN 0 AND 1 "
    "GROUP BY extract_group(L.groupByExtractCol)";

constexpr uint32_t kStreamSweep[] = {1, 4, 16, 64};

struct StreamResult {
  uint32_t streams = 0;
  int64_t queries = 0;       ///< completed queries
  int64_t queued = 0;        ///< admitted after waiting in the queue
  int64_t shed = 0;          ///< kResourceExhausted (expected: 0 here)
  double wall_seconds = 0;   ///< whole-sweep wall time
  double qps = 0;
  int64_t p50_us = 0;
  int64_t p99_us = 0;
};

struct AdmissionResult {
  uint32_t limit = 0;
  size_t max_queued = 0;
  int offered = 0;
  int64_t admitted = 0;
  int64_t queued_granted = 0;
  int64_t shed = 0;
  int errors_other = 0;  ///< anything but ok/kResourceExhausted (want 0)
};

/// Observability-plane cost at 16 streams: the same sweep cell run twice,
/// once plain and once with the full plane on (sampler + scrape endpoint +
/// event log + slow-query log). overhead_pct is perfcheck-gated at an
/// absolute ceiling (tools/perfcheck --max_overhead_pct, default 2.0).
struct OverheadResult {
  uint32_t streams = 0;
  double wall_seconds_plain = 0;
  double wall_seconds_observed = 0;
  double overhead_pct = 0;
};

Result<HybridWarehouse*> MakeWarehouse(bool smoke) {
  WorkloadConfig wc;
  wc.num_join_keys = smoke ? 1024 : 2048;
  wc.t_rows = smoke ? 16 * 1024 : 32 * 1024;
  wc.l_rows = smoke ? 64 * 1024 : 128 * 1024;
  HJ_ASSIGN_OR_RETURN(Workload workload,
                      Workload::Generate(wc, {0.1, 0.1, 0.5, 0.5}));
  // The paper-testbed throttles make each query spend part of its life in
  // simulated disk/NIC waits: a single stream leaves each resource idle
  // while it uses the others, so overlapping streams lift throughput even
  // on a single core — the effect the sweep exists to measure. Scale 0.25
  // balances the per-query CPU and I/O fractions at this workload size
  // (higher scales let the bucket bursts swallow the I/O entirely and the
  // sweep degenerates to pure CPU time-slicing).
  SimulationConfig config = SimulationConfig::PaperTestbed(2, 2, 0.25);
  // Disable the page cache: identical back-to-back queries would otherwise
  // all run warm after the first, and the throttled-I/O phase (the very
  // thing concurrency overlaps) would vanish from the measurement.
  config.datanode.cache_capacity_bytes = 0;
  config.bloom.expected_keys = wc.num_join_keys;
  auto* hw = new HybridWarehouse(config);
  HJ_RETURN_IF_ERROR(LoadWorkload(hw, workload));
  return hw;
}

/// `streams` client threads, `queries_per_stream` queries each, through one
/// server with a deep queue and a generous deadline (throughput run: nothing
/// should shed).
StreamResult RunStreams(HybridWarehouse* hw, uint32_t streams,
                        int queries_per_stream,
                        const server::ObservabilityConfig* obs = nullptr) {
  server::ServerConfig sc;
  sc.admission.max_concurrent_queries = 8;
  sc.admission.max_queued = 128;
  sc.admission.queue_timeout = std::chrono::milliseconds(120000);
  if (obs != nullptr) sc.observability = *obs;
  server::WarehouseServer server(hw, sc);

  LatencyHistogram latency;
  std::mutex latency_mu;
  std::atomic<int64_t> ok{0};
  std::atomic<int64_t> shed{0};

  Stopwatch sweep_watch;
  std::vector<std::thread> threads;
  threads.reserve(streams);
  for (uint32_t s = 0; s < streams; ++s) {
    threads.emplace_back([&] {
      const uint64_t session = server.OpenSession();
      for (int q = 0; q < queries_per_stream; ++q) {
        Stopwatch watch;
        auto result = server.Execute(session, kQuery);
        if (result.ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(latency_mu);
          latency.RecordMicros(watch.ElapsedMicros());
        } else if (result.status().code() == StatusCode::kResourceExhausted) {
          shed.fetch_add(1, std::memory_order_relaxed);
        }
      }
      (void)server.CloseSession(session);
    });
  }
  for (auto& t : threads) t.join();

  StreamResult r;
  r.streams = streams;
  r.queries = ok.load();
  r.shed = shed.load();
  r.wall_seconds = sweep_watch.ElapsedSeconds();
  r.qps = r.wall_seconds > 0
              ? static_cast<double>(r.queries) / r.wall_seconds
              : 0;
  r.p50_us = latency.PercentileMicros(50);
  r.p99_us = latency.PercentileMicros(99);
  r.queued = server.stats().admission.admitted_queued;
  return r;
}

/// Runs the 16-stream sweep cell twice — plain, then with every piece of
/// the observability plane switched on — and reports the wall-clock delta.
/// The observed run scrapes nothing itself; the cost measured is the
/// always-on part: registry bookkeeping, cancel checks, event emission,
/// the background sampler, and the idle scrape listener.
OverheadResult RunOverhead(HybridWarehouse* hw, int queries_per_stream) {
  constexpr uint32_t kStreams = 16;
  const StreamResult plain = RunStreams(hw, kStreams, queries_per_stream);

  server::ObservabilityConfig obs;
  obs.metrics_http = true;
  obs.metrics_http_port = 0;  // ephemeral: the cost is the idle listener
  obs.metrics_out = "bench_obs_metrics.prom";
  obs.sample_interval = std::chrono::milliseconds(250);
  obs.event_log_path = "bench_obs_events.jsonl";
  obs.slow_query_dir = ".";
  obs.slow_query_seconds = 3600.0;  // threshold checked but never crossed
  const StreamResult observed =
      RunStreams(hw, kStreams, queries_per_stream, &obs);
  std::remove("bench_obs_metrics.prom");
  std::remove("bench_obs_events.jsonl");

  OverheadResult r;
  r.streams = kStreams;
  r.wall_seconds_plain = plain.wall_seconds;
  r.wall_seconds_observed = observed.wall_seconds;
  r.overhead_pct =
      plain.wall_seconds > 0
          ? (observed.wall_seconds - plain.wall_seconds) /
                plain.wall_seconds * 100.0
          : 0;
  return r;
}

/// Deterministic queue-then-shed demonstration: a 1-slot server with a
/// 2-deep queue and a deadline far below one query's runtime, hit by 6
/// simultaneous arrivals. Exactly one runs; the rest queue (or block on the
/// full queue) and shed on deadline with kResourceExhausted — no crashes,
/// no hangs.
AdmissionResult RunAdmissionShed(HybridWarehouse* hw) {
  server::ServerConfig sc;
  sc.admission.max_concurrent_queries = 1;
  sc.admission.max_queued = 2;
  sc.admission.queue_timeout = std::chrono::milliseconds(5);
  server::WarehouseServer server(hw, sc);

  constexpr int kOffered = 6;
  std::atomic<int> errors_other{0};
  std::vector<std::thread> threads;
  threads.reserve(kOffered);
  for (int i = 0; i < kOffered; ++i) {
    threads.emplace_back([&] {
      const uint64_t session = server.OpenSession();
      auto result = server.Execute(session, kQuery);
      if (!result.ok() &&
          result.status().code() != StatusCode::kResourceExhausted) {
        errors_other.fetch_add(1, std::memory_order_relaxed);
      }
      (void)server.CloseSession(session);
    });
  }
  for (auto& t : threads) t.join();

  const server::ServerStats stats = server.stats();
  AdmissionResult r;
  r.limit = sc.admission.max_concurrent_queries;
  r.max_queued = sc.admission.max_queued;
  r.offered = kOffered;
  r.admitted = stats.admission.admitted;
  r.queued_granted = stats.admission.admitted_queued;
  r.shed = stats.admission.shed;
  r.errors_other = errors_other.load();
  return r;
}

int WriteJson(const std::string& path,
              const std::vector<StreamResult>& sweep,
              const AdmissionResult& admission,
              const OverheadResult& overhead) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"concurrency\": {\n    \"sweep\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const StreamResult& r = sweep[i];
    std::fprintf(
        f,
        "      {\"streams\": %u, \"queries\": %lld, "
        "\"wall_seconds\": %.6f, \"queries_per_second\": %.2f, "
        "\"p50_us\": %lld, \"p99_us\": %lld, \"queued\": %lld, "
        "\"shed\": %lld}%s\n",
        r.streams, static_cast<long long>(r.queries), r.wall_seconds, r.qps,
        static_cast<long long>(r.p50_us), static_cast<long long>(r.p99_us),
        static_cast<long long>(r.queued), static_cast<long long>(r.shed),
        i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "    ],\n");
  std::fprintf(
      f,
      "    \"admission\": {\"limit\": %u, \"max_queued\": %zu, "
      "\"offered\": %d, \"admitted\": %lld, \"queued_granted\": %lld, "
      "\"shed\": %lld, \"errors_other\": %d},\n",
      admission.limit, admission.max_queued, admission.offered,
      static_cast<long long>(admission.admitted),
      static_cast<long long>(admission.queued_granted),
      static_cast<long long>(admission.shed), admission.errors_other);
  std::fprintf(
      f,
      "    \"observability\": {\"streams\": %u, "
      "\"wall_seconds_plain\": %.6f, \"wall_seconds_observed\": %.6f, "
      "\"overhead_pct\": %.3f}\n",
      overhead.streams, overhead.wall_seconds_plain,
      overhead.wall_seconds_observed, overhead.overhead_pct);
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

int Run(const std::string& out_path) {
  const bool smoke = [] {
    const char* s = std::getenv("HJ_BENCH_SMOKE");
    return s != nullptr && s[0] == '1';
  }();
  // At least two queries per stream: simultaneous identical single-shot
  // queries march through the phases in lockstep (scan convoy, then compute
  // convoy) and the pipeline overlap never forms.
  const int queries_per_stream = smoke ? 2 : 3;

  auto hw = MakeWarehouse(smoke);
  if (!hw.ok()) {
    std::fprintf(stderr, "%s\n", hw.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<HybridWarehouse> owned(hw.value());

  std::vector<StreamResult> sweep;
  for (uint32_t streams : kStreamSweep) {
    sweep.push_back(RunStreams(owned.get(), streams, queries_per_stream));
  }
  const AdmissionResult admission = RunAdmissionShed(owned.get());
  const OverheadResult overhead =
      RunOverhead(owned.get(), queries_per_stream);

  std::printf("%8s %8s %10s %10s %10s %8s %6s\n", "streams", "queries",
              "qps", "p50(ms)", "p99(ms)", "queued", "shed");
  for (const StreamResult& r : sweep) {
    std::printf("%8u %8lld %10.2f %10.1f %10.1f %8lld %6lld\n", r.streams,
                static_cast<long long>(r.queries), r.qps,
                static_cast<double>(r.p50_us) / 1e3,
                static_cast<double>(r.p99_us) / 1e3,
                static_cast<long long>(r.queued),
                static_cast<long long>(r.shed));
  }
  std::printf(
      "admission: limit %u queue %zu: offered %d -> admitted %lld "
      "(%lld after queueing), shed %lld, other errors %d\n",
      admission.limit, admission.max_queued, admission.offered,
      static_cast<long long>(admission.admitted),
      static_cast<long long>(admission.queued_granted),
      static_cast<long long>(admission.shed), admission.errors_other);

  const double qps1 = sweep[0].qps;
  const double qps4 = sweep.size() > 1 ? sweep[1].qps : 0;
  std::printf("4-stream vs 1-stream throughput: %.2fx %s\n",
              qps1 > 0 ? qps4 / qps1 : 0,
              qps4 > qps1 ? "(concurrent executions overlap)"
                          : "(WARNING: no overlap measured)");
  std::printf(
      "observability overhead at %u streams: %.3fs plain vs %.3fs "
      "observed = %+.2f%%\n",
      overhead.streams, overhead.wall_seconds_plain,
      overhead.wall_seconds_observed, overhead.overhead_pct);

  return WriteJson(out_path, sweep, admission, overhead);
}

}  // namespace
}  // namespace hybridjoin

int main(int argc, char** argv) {
  std::string out_path = "BENCH_concurrency.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  return hybridjoin::Run(out_path);
}
