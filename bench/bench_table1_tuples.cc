// Table 1 — "Zigzag join vs repartition joins (sigma_T=0.1, sigma_L=0.4,
// S_L'=0.1, S_T'=0.2): # tuples shuffled and sent".
//
// Paper's numbers (15 B-row L, 1.6 B-row T):
//     repartition      5,854 M shuffled   165 M sent
//     repartition(BF)    591 M shuffled   165 M sent
//     zigzag             591 M shuffled    30 M sent
// i.e. the Bloom filter cuts the HDFS shuffle ~10x (= S_L') and the zigzag
// additionally cuts the database transfer ~5x (= S_T').

#include "bench_common.h"

using namespace hybridjoin;
using namespace hybridjoin::bench;

int main() {
  const BenchConfig config = BenchConfig::FromEnv();
  PrintPreamble("Table 1",
                "tuples shuffled and sent: repartition vs zigzag", config);
  const SelectivitySpec spec{0.1, 0.4, 0.2, 0.1};
  auto cell = BenchCell::Create(config, spec, HdfsFormat::kColumnar);
  if (cell == nullptr) return 1;

  struct Row {
    JoinAlgorithm algorithm;
    int64_t shuffled = 0;
    int64_t sent = 0;
    double seconds = 0;
  };
  Row rows[3] = {{JoinAlgorithm::kRepartition},
                 {JoinAlgorithm::kRepartitionBloom},
                 {JoinAlgorithm::kZigzag}};
  for (Row& row : rows) {
    ExecutionReport report;
    row.seconds = cell->Run(row.algorithm, &report);
    if (row.seconds < 0) return 1;
    row.shuffled = report.Counter(metric::kHdfsTuplesShuffled);
    row.sent = report.Counter(metric::kDbTuplesSent);
  }

  std::printf("\n%-18s %18s %15s %10s\n", "algorithm",
              "HDFS tuples shuffled", "DB tuples sent", "time (s)");
  for (const Row& row : rows) {
    std::printf("%-18s %18lld %15lld %10.3f\n",
                JoinAlgorithmName(row.algorithm),
                static_cast<long long>(row.shuffled),
                static_cast<long long>(row.sent), row.seconds);
  }
  std::printf("\npaper (scaled to ratios): repartition 1.00 / 1.00, "
              "repartition(BF) 0.10 / 1.00, zigzag 0.10 / 0.18\n");
  const double shuffle_bf = static_cast<double>(rows[1].shuffled) /
                            static_cast<double>(rows[0].shuffled);
  const double shuffle_zz = static_cast<double>(rows[2].shuffled) /
                            static_cast<double>(rows[0].shuffled);
  const double sent_zz = static_cast<double>(rows[2].sent) /
                         static_cast<double>(rows[0].sent);
  std::printf("measured ratios:          repartition 1.00 / 1.00, "
              "repartition(BF) %.2f / %.2f, zigzag %.2f / %.2f\n\n",
              shuffle_bf,
              static_cast<double>(rows[1].sent) /
                  static_cast<double>(rows[0].sent),
              shuffle_zz, sent_zz);

  ShapeCheck("BF cuts HDFS tuples shuffled to ~S_L' (= 0.10)",
             shuffle_bf < 0.25);
  ShapeCheck("zigzag shuffle equals repartition(BF) shuffle",
             rows[2].shuffled == rows[1].shuffled ||
                 shuffle_zz < 0.25);
  ShapeCheck("plain repartition sends full T' both times",
             rows[0].sent == rows[1].sent);
  ShapeCheck("zigzag cuts DB tuples sent to ~S_T' (= 0.20)",
             sent_zz < 0.45);
  return 0;
}
